(* Tests for the slot protocol endpoint machine (paper Figure 9):
   ordinary open/accept/close exchanges, rejects, crossing signals, open
   races, and protocol-error detection. *)

open Mediactl_types
open Mediactl_protocol

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let addr_a = Address.v "10.0.0.1" 5000
let addr_b = Address.v "10.0.0.2" 5002

let desc_a = Descriptor.make ~owner:"A" ~version:0 addr_a [ Codec.G711; Codec.G726 ]
let desc_b = Descriptor.make ~owner:"B" ~version:0 addr_b [ Codec.G711 ]

let sel_for sender desc =
  Selector.answer desc ~sender ~willing:[ Codec.G711; Codec.G726 ] ~mute_out:false

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected slot error: %s" (Slot.error_to_string e)

let expect_error = function
  | Ok _ -> Alcotest.fail "expected a protocol error"
  | Error _ -> ()

let fresh ?(role = Slot.Channel_initiator) label = Slot.create ~label role

let state_is expected slot =
  check tbool
    (Printf.sprintf "state %s" (Slot_state.to_string expected))
    true
    (Slot_state.equal slot.Slot.state expected)

(* --- the opener side ------------------------------------------------ *)

let test_open_then_oack_then_select () =
  let s = fresh "a" in
  let s, sig1 = ok (Slot.send_open s Medium.Audio desc_a) in
  check tbool "sent open" true (Signal.name sig1 = "open");
  state_is Slot_state.Opening s;
  let s, auto, notes = ok (Slot.receive s (Signal.Oack desc_b)) in
  check tint "no auto reply" 0 (List.length auto);
  check tbool "accepted note" true (List.mem Slot.Accepted_by_peer notes);
  state_is Slot_state.Flowing s;
  let s, _ = ok (Slot.send_select s (sel_for addr_a desc_b)) in
  check tbool "tx enabled" true (Slot.tx_enabled s);
  check tbool "tx codec" true (Slot.tx_codec s = Some Codec.G711)

let test_open_then_reject () =
  let s = fresh "a" in
  let s, _ = ok (Slot.send_open s Medium.Audio desc_a) in
  let s, auto, notes = ok (Slot.receive s Signal.Close) in
  check tbool "auto closeack" true (auto = [ Signal.Closeack ]);
  check tbool "closed note" true (List.mem Slot.Closed_by_peer notes);
  state_is Slot_state.Closed s;
  check tbool "caches wiped" true (s.Slot.medium = None && s.Slot.remote_desc = None)

(* --- the acceptor side ---------------------------------------------- *)

let test_accept_flow () =
  let s = fresh ~role:Slot.Channel_acceptor "b" in
  let s, _, notes = ok (Slot.receive s (Signal.Open (Medium.Audio, desc_a))) in
  check tbool "opened note" true (List.mem Slot.Opened_by_peer notes);
  state_is Slot_state.Opened s;
  check tbool "described" true (Slot.described s);
  let s, sig1 = ok (Slot.send_oack s desc_b) in
  check tbool "oack" true (Signal.name sig1 = "oack");
  state_is Slot_state.Flowing s;
  let s, _ = ok (Slot.send_select s (sel_for addr_b desc_a)) in
  let s, _, _ = ok (Slot.receive s (Signal.Select (sel_for addr_a desc_b))) in
  check tbool "rx enabled" true (Slot.rx_enabled s);
  check tbool "tx enabled" true (Slot.tx_enabled s)

let test_reject_from_opened () =
  let s = fresh ~role:Slot.Channel_acceptor "b" in
  let s, _, _ = ok (Slot.receive s (Signal.Open (Medium.Audio, desc_a))) in
  let s, sig1 = ok (Slot.send_close s) in
  check tbool "close as reject" true (Signal.name sig1 = "close");
  state_is Slot_state.Closing s;
  let s, _, notes = ok (Slot.receive s Signal.Closeack) in
  check tbool "confirmed" true (List.mem Slot.Close_confirmed notes);
  state_is Slot_state.Closed s

(* --- closing and crossings ------------------------------------------ *)

let flowing_pair () =
  (* Returns a flowing slot (the opener side). *)
  let s = fresh "a" in
  let s, _ = ok (Slot.send_open s Medium.Audio desc_a) in
  let s, _, _ = ok (Slot.receive s (Signal.Oack desc_b)) in
  s

let test_close_handshake () =
  let s = flowing_pair () in
  let s, _ = ok (Slot.send_close s) in
  state_is Slot_state.Closing s;
  let s, _, _ = ok (Slot.receive s Signal.Closeack) in
  state_is Slot_state.Closed s

let test_close_crossing_close () =
  (* Both ends close at once: each receives close while closing, must
     acknowledge it, and still waits for its own closeack. *)
  let s = flowing_pair () in
  let s, _ = ok (Slot.send_close s) in
  let s, auto, _ = ok (Slot.receive s Signal.Close) in
  check tbool "acks their close" true (auto = [ Signal.Closeack ]);
  state_is Slot_state.Closing s;
  let s, _, _ = ok (Slot.receive s Signal.Closeack) in
  state_is Slot_state.Closed s

let test_stale_signals_dropped_while_closing () =
  let s = flowing_pair () in
  let s, _ = ok (Slot.send_close s) in
  let s, auto, notes = ok (Slot.receive s (Signal.Describe desc_b)) in
  check tbool "no reply" true (auto = []);
  check tbool "dropped" true
    (List.exists (function Slot.Dropped _ -> true | _ -> false) notes);
  let s, _, notes = ok (Slot.receive s (Signal.Select (sel_for addr_b desc_a))) in
  check tbool "select dropped" true
    (List.exists (function Slot.Dropped _ -> true | _ -> false) notes);
  let s, _, notes = ok (Slot.receive s (Signal.Oack desc_b)) in
  check tbool "oack dropped" true
    (List.exists (function Slot.Dropped _ -> true | _ -> false) notes);
  state_is Slot_state.Closing s

(* --- open races ------------------------------------------------------ *)

let test_race_initiator_wins () =
  let s = fresh ~role:Slot.Channel_initiator "a" in
  let s, _ = ok (Slot.send_open s Medium.Audio desc_a) in
  let s, _, notes = ok (Slot.receive s (Signal.Open (Medium.Audio, desc_b))) in
  check tbool "race won" true (List.mem Slot.Race_won notes);
  state_is Slot_state.Opening s;
  (* The loser will oack our open. *)
  let s, _, _ = ok (Slot.receive s (Signal.Oack desc_b)) in
  state_is Slot_state.Flowing s

let test_race_acceptor_backs_off () =
  let s = fresh ~role:Slot.Channel_acceptor "b" in
  let s, _ = ok (Slot.send_open s Medium.Audio desc_b) in
  let s, _, notes = ok (Slot.receive s (Signal.Open (Medium.Audio, desc_a))) in
  check tbool "race lost" true (List.mem Slot.Race_lost notes);
  check tbool "also opened" true (List.mem Slot.Opened_by_peer notes);
  state_is Slot_state.Opened s;
  (* The loser's cached descriptor is the winner's. *)
  check tbool "winner's descriptor" true
    (match s.Slot.remote_desc with
    | Some d -> Descriptor.equal d desc_a
    | None -> false)

(* --- describe / select in flowing ------------------------------------ *)

let test_redescribe () =
  let s = flowing_pair () in
  let desc_b2 = Descriptor.make ~owner:"B" ~version:1 addr_b [ Codec.G726 ] in
  let s, _, notes = ok (Slot.receive s (Signal.Describe desc_b2)) in
  check tbool "new descriptor" true (List.mem Slot.New_descriptor notes);
  check tbool "cache updated" true
    (match s.Slot.remote_desc with
    | Some d -> Descriptor.equal d desc_b2
    | None -> false);
  (* A selector answering the old descriptor no longer enables tx. *)
  let s, _ = ok (Slot.send_select s (sel_for addr_a desc_b)) in
  check tbool "stale selector does not enable" false (Slot.tx_enabled s);
  let s, _ = ok (Slot.send_select s (sel_for addr_a desc_b2)) in
  check tbool "fresh selector enables" true (Slot.tx_enabled s)

let test_no_media_selector_disables () =
  let s = flowing_pair () in
  let muted = Selector.answer desc_b ~sender:addr_a ~willing:[ Codec.G711 ] ~mute_out:true in
  let s, _ = ok (Slot.send_select s muted) in
  check tbool "muted tx" false (Slot.tx_enabled s)

(* --- protocol errors -------------------------------------------------- *)

let test_errors () =
  let closed = fresh "x" in
  expect_error (Slot.receive closed (Signal.Oack desc_b));
  expect_error (Slot.receive closed Signal.Close);
  expect_error (Slot.receive closed Signal.Closeack);
  expect_error (Slot.receive closed (Signal.Describe desc_b));
  expect_error (Slot.receive closed (Signal.Select (sel_for addr_b desc_a)));
  expect_error (Slot.send_oack closed desc_a);
  expect_error (Slot.send_close closed);
  expect_error (Slot.send_describe closed desc_a);
  expect_error (Slot.send_select closed (sel_for addr_a desc_b));
  let s = flowing_pair () in
  expect_error (Slot.send_open s Medium.Audio desc_a);
  expect_error (Slot.receive s (Signal.Open (Medium.Audio, desc_b)));
  expect_error (Slot.receive s (Signal.Oack desc_b))

let test_medium_defined_iff_not_closed () =
  let s = fresh "a" in
  check tbool "closed: no medium" true (s.Slot.medium = None);
  let s, _ = ok (Slot.send_open s Medium.Video desc_a) in
  check tbool "opening: medium" true (s.Slot.medium = Some Medium.Video);
  let s, _ = ok (Slot.send_close s) in
  check tbool "closing: medium kept" true (s.Slot.medium = Some Medium.Video);
  let s, _, _ = ok (Slot.receive s Signal.Closeack) in
  check tbool "closed again: wiped" true (s.Slot.medium = None)

(* --- Figure 10: the full use-of-the-protocol scenario ------------------- *)

let test_figure_10_scenario () =
  (* Two directly connected protocol endpoints play out the paper's
     Figure 10: open/oack with two selects, a mid-call codec re-select,
     a re-describe answered by a fresh select, then close/closeack. *)
  let send_between sender receiver op =
    let sender, signal = ok (op sender) in
    let receiver, auto, _ = ok (Slot.receive receiver signal) in
    check tbool "no auto reply expected" true (auto = []);
    (sender, receiver)
  in
  let l = fresh ~role:Slot.Channel_initiator "L" in
  let r = fresh ~role:Slot.Channel_acceptor "R" in
  (* open(desc1) *)
  let l, r = send_between l r (fun s -> Slot.send_open s Medium.Audio desc_a) in
  (* oack(desc2), then select(sel1) answering desc1 *)
  let r, l = send_between r l (fun s -> Slot.send_oack s desc_b) in
  let r, l =
    send_between r l (fun s ->
        Slot.send_select s (Selector.answer desc_a ~sender:addr_b ~willing:[ Codec.G711 ] ~mute_out:false))
  in
  (* select(sel2) answering desc2 *)
  let l, r = send_between l r (fun s -> Slot.send_select s (sel_for addr_a desc_b)) in
  check tbool "both enabled" true
    (Slot.tx_enabled l && Slot.rx_enabled l && Slot.tx_enabled r && Slot.rx_enabled r);
  (* select(sel'2): the left end switches to another codec from the same
     descriptor, without any new describe (paper: "at any time"). *)
  let l, r =
    send_between l r (fun s ->
        Slot.send_select s (Selector.answer desc_b ~sender:addr_a ~willing:[ Codec.G711 ] ~mute_out:false))
  in
  check tbool "still enabled after re-select" true (Slot.rx_enabled r);
  (* describe(desc3) from the right; the left must answer with a fresh
     selector (sel3). *)
  let desc_b3 = Descriptor.make ~owner:"B" ~version:3 addr_b [ Codec.G726 ] in
  let r, l = send_between r l (fun s -> Slot.send_describe s desc_b3) in
  check tbool "old selector now stale" false (Slot.tx_enabled l);
  let l, r = send_between l r (fun s -> Slot.send_select s (sel_for addr_a desc_b3)) in
  check tbool "fresh selector restores" true (Slot.tx_enabled l && Slot.rx_enabled r);
  check tbool "codec followed the descriptor" true (Slot.tx_codec l = Some Codec.G726);
  (* close / closeack *)
  let l, close_sig = ok (Slot.send_close l) in
  let r, auto, _ = ok (Slot.receive r close_sig) in
  check tbool "closeack" true (auto = [ Signal.Closeack ]);
  let l, _, _ = ok (Slot.receive l (List.hd auto)) in
  check tbool "both closed" true (Slot.is_closed l && Slot.is_closed r)

(* --- property: no exceptions, ever ------------------------------------ *)

let arb_signal =
  let open QCheck2.Gen in
  let desc = oneofl [ desc_a; desc_b; Descriptor.no_media ~owner:"A" ~version:1 addr_a ] in
  oneof
    [
      map (fun d -> Signal.Open (Medium.Audio, d)) desc;
      map (fun d -> Signal.Oack d) desc;
      return Signal.Close;
      return Signal.Closeack;
      map (fun d -> Signal.Describe d) desc;
      map (fun d -> Signal.Select (sel_for addr_b d)) desc;
    ]

let prop_receive_total =
  QCheck2.Test.make ~name:"receive never raises, whatever arrives" ~count:1000
    QCheck2.Gen.(pair bool (list_size (int_range 0 20) arb_signal))
    (fun (initiator, signals) ->
      let role = if initiator then Slot.Channel_initiator else Slot.Channel_acceptor in
      let s = fresh ~role "p" in
      let final =
        List.fold_left
          (fun s signal ->
            match Slot.receive s signal with
            | Ok (s, _, _) -> s
            | Error _ -> s (* errors are data, not exceptions *))
          s signals
      in
      ignore (Slot.tx_enabled final);
      ignore (Slot.rx_enabled final);
      true)

let prop_closed_is_blank =
  QCheck2.Test.make ~name:"whenever a slot is closed its caches are empty" ~count:1000
    QCheck2.Gen.(list_size (int_range 0 25) arb_signal)
    (fun signals ->
      let s = fresh "p" in
      let states =
        List.fold_left
          (fun (s, acc) signal ->
            match Slot.receive s signal with
            | Ok (s, _, _) -> (s, s :: acc)
            | Error _ -> (s, acc))
          (s, [ s ]) signals
        |> snd
      in
      List.for_all
        (fun s ->
          (not (Slot.is_closed s))
          || (s.Slot.medium = None && s.Slot.remote_desc = None && s.Slot.sent_desc = None))
        states)

let prop_describe_select_idempotent =
  (* Section IX-B calls the protocol idempotent: describe and select
     provide updated information without changing the fundamental state,
     so re-delivering the same signal leaves the slot exactly where it
     was. *)
  QCheck2.Test.make ~name:"duplicate describes/selects change nothing" ~count:500
    QCheck2.Gen.(pair bool (int_range 0 3))
    (fun (use_describe, version) ->
      let s = fresh "p" in
      let s, _ = ok (Slot.send_open s Medium.Audio desc_a) in
      let s, _, _ = ok (Slot.receive s (Signal.Oack desc_b)) in
      let signal =
        if use_describe then
          Signal.Describe (Descriptor.make ~owner:"B" ~version addr_b [ Codec.G711 ])
        else Signal.Select (sel_for addr_b desc_a)
      in
      let once =
        match Slot.receive s signal with
        | Ok (s, _, _) -> s
        | Error _ -> s
      in
      let twice =
        match Slot.receive once signal with
        | Ok (s, _, _) -> s
        | Error _ -> once
      in
      Slot.equal once twice)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_receive_total; prop_closed_is_blank; prop_describe_select_idempotent ]

let () =
  Alcotest.run "slot"
    [
      ( "opener",
        [
          Alcotest.test_case "open/oack/select" `Quick test_open_then_oack_then_select;
          Alcotest.test_case "open then reject" `Quick test_open_then_reject;
        ] );
      ( "acceptor",
        [
          Alcotest.test_case "accept flow" `Quick test_accept_flow;
          Alcotest.test_case "reject from opened" `Quick test_reject_from_opened;
        ] );
      ( "closing",
        [
          Alcotest.test_case "close handshake" `Quick test_close_handshake;
          Alcotest.test_case "close crossing close" `Quick test_close_crossing_close;
          Alcotest.test_case "stale signals dropped" `Quick test_stale_signals_dropped_while_closing;
        ] );
      ( "races",
        [
          Alcotest.test_case "initiator wins" `Quick test_race_initiator_wins;
          Alcotest.test_case "acceptor backs off" `Quick test_race_acceptor_backs_off;
        ] );
      ( "flowing",
        [
          Alcotest.test_case "redescribe" `Quick test_redescribe;
          Alcotest.test_case "noMedia selector" `Quick test_no_media_selector_disables;
        ] );
      ( "figure 10",
        [ Alcotest.test_case "full protocol scenario" `Quick test_figure_10_scenario ] );
      ( "errors",
        [
          Alcotest.test_case "illegal moves rejected" `Quick test_errors;
          Alcotest.test_case "medium lifetime" `Quick test_medium_defined_iff_not_closed;
        ] );
      ("properties", qcheck_cases);
    ]
