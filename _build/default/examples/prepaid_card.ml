(* The paper's running example (Figures 2, 3, and 13): a prepaid-card
   server and an IP PBX manipulate the same media channels concurrently.

   The demo first replays Figure 2 — what happens when the servers are
   NOT coordinated — then Figure 3 with the compositional primitives,
   and finally the Figure-13 concurrent relink with its 2n+3c latency.

   Run with: dune exec examples/prepaid_card.exe *)

open Mediactl_apps
open Mediactl_runtime

let print_edges prefix edges =
  Format.printf "%s %s@." prefix
    (if edges = [] then "(silence)"
     else String.concat ", " (List.map (fun (a, b) -> a ^ "->" ^ b) edges))

let settle net = fst (Netsys.run net)

let () =
  Format.printf "== Figure 2: uncoordinated servers ==@.";
  let m = Naive.initial () in
  print_edges "snapshot 1:" (Naive.flows m);
  let m = Naive.snapshot m 2 in
  print_edges "snapshot 2:" (Naive.flows m);
  let m = Naive.snapshot m 3 in
  print_edges "snapshot 3:" (Naive.flows m);
  let m = Naive.snapshot m 4 in
  print_edges "snapshot 4:" (Naive.flows m);
  Format.printf "anomalies:@.";
  List.iter (fun a -> Format.printf "  - %s@." a) (Naive.anomalies m);

  Format.printf "@.== Figure 3: compositional media control ==@.";
  let net = settle (Prepaid.build ()) in
  print_edges "initial (A-B call):  " (Prepaid.flows net);
  let net = settle (fst (Prepaid.snapshot1 net)) in
  print_edges "snapshot 1 (A takes C):" (Prepaid.flows net);
  let net = settle (fst (Prepaid.snapshot2 net)) in
  print_edges "snapshot 2 (funds out):" (Prepaid.flows net);
  let net = settle (fst (Prepaid.snapshot3 net)) in
  print_edges "snapshot 3 (A back to B):" (Prepaid.flows net);
  let net4, _ = Prepaid.snapshot4_pc net in
  let net4, _ = Prepaid.snapshot4_pbx net4 in
  let net4 = settle net4 in
  print_edges "snapshot 4 (reconnected):" (Prepaid.flows net4);
  Format.printf "no anomalies: C-V stayed two-way in snapshot 3, B stayed silent.@.";

  Format.printf "@.== Figure 13: concurrent relink latency ==@.";
  let n = 34.0 and c = 20.0 in
  let sim = Timed.create ~n ~c net in
  let a_tx = ref nan and c_tx = ref nan in
  let transmits r owner net =
    match Netsys.slot net r with
    | Some slot -> (
      Mediactl_protocol.Slot.tx_enabled slot
      &&
      match slot.Mediactl_protocol.Slot.remote_desc with
      | Some d -> fst (Mediactl_types.Descriptor.id d) = owner
      | None -> false)
    | None -> false
  in
  Timed.when_true sim (transmits Prepaid.a_slot "C") (fun t -> a_tx := t);
  Timed.when_true sim (transmits Prepaid.c_slot "A") (fun t -> c_tx := t);
  Timed.apply sim Prepaid.snapshot4_pc;
  Timed.apply sim Prepaid.snapshot4_pbx;
  let _ = Timed.run sim in
  Format.printf "PC and the PBX change state at t=0 (n=%.0f ms, c=%.0f ms)@." n c;
  Format.printf "A can transmit toward C at t=%.0f ms@." !a_tx;
  Format.printf "C can transmit toward A at t=%.0f ms@." !c_tx;
  Format.printf "paper's analysis: 2n + 3c = %.0f ms@.@." ((2.0 *. n) +. (3.0 *. c));
  Format.printf "message-sequence chart (compare with the paper's Figure 13):@.";
  Format.printf "%a" Timed.pp_trace sim
