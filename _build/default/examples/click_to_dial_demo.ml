(* Click-to-Dial (paper Figure 6): a box program written in the
   state-oriented DSL drives two phone calls and a tone resource.

   Three runs: the callee answers; the callee is busy (the caller hears
   a busy tone); the caller abandons while ringing.

   Run with: dune exec examples/click_to_dial_demo.exe *)

open Mediactl_types
open Mediactl_core
open Mediactl_runtime
open Mediactl_apps

let local name = Local.endpoint ~owner:name (Address.v "10.0.0.7" 5000) [ Codec.G711 ]

let scenario ~callee ~caller_hangs_up =
  let net = List.fold_left Netsys.add_box Netsys.empty [ "ctd"; "phone1"; "phone2"; "tones" ] in
  let sim = Timed.create ~n:10.0 ~c:5.0 net in
  Device.install sim ~box:"phone1" (local "user1") Device.Answers;
  Device.install sim ~box:"phone2" (local "user2") callee;
  Device.install sim ~box:"tones" (local "tonegen") Device.Answers;
  let running =
    Program.launch sim
      (Click_to_dial.program ~box:"ctd" ~caller_device:"phone1" ~callee_device:"phone2"
         ~tone_server:"tones" ~no_answer_timeout:30_000.0)
  in
  let _ = Timed.run ~until:2_000.0 sim in
  if caller_hangs_up then begin
    Device.hang_up sim ~box:"phone1" ~chan:Click_to_dial.chan_one;
    ignore (Timed.run ~until:4_000.0 sim)
  end;
  let states = List.map (fun (t, s) -> Printf.sprintf "%s@%.0fms" s t) (Program.trace running) in
  Format.printf "  program: %s%s@."
    (String.concat " -> " states)
    (match Program.current_state running with
    | Some _ -> ""
    | None -> " -> (terminated)");
  let edges = Mediactl_media.Flow.edges (Paths.flows (Timed.net sim)) in
  Format.printf "  media:   %s@."
    (if edges = [] then "(silence)"
     else String.concat ", " (List.map (fun (a, b) -> a ^ " -> " ^ b) edges))

let () =
  Format.printf "== click-to-dial: callee answers ==@.";
  scenario ~callee:Device.Answers ~caller_hangs_up:false;
  Format.printf "@.== click-to-dial: callee busy ==@.";
  scenario ~callee:Device.Busy ~caller_hangs_up:false;
  Format.printf "@.== click-to-dial: caller hangs up ==@.";
  scenario ~callee:Device.Answers ~caller_hangs_up:true
