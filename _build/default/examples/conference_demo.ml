(* Audio conferencing (paper Figure 7): a conference server flowlinks
   each user's tunnel to a tunnel toward a mixing bridge.  Full muting
   uses the signaling primitives; partial muting is a bridge-side mixing
   matrix driven by meta-signals.

   Run with: dune exec examples/conference_demo.exe *)

open Mediactl_types
open Mediactl_core
open Mediactl_runtime
open Mediactl_apps

let users =
  List.map
    (fun (name, host) -> (name, Local.endpoint ~owner:name (Address.v host 5000) [ Codec.G711 ]))
    [ ("alice", "10.0.1.1"); ("bob", "10.0.1.2"); ("carol", "10.0.1.3") ]

let participants = List.map fst users

let settle net = fst (Netsys.run net)

let show_flows label net =
  Format.printf "%-22s %s@." label
    (String.concat ", "
       (List.map (fun (a, b) -> a ^ "->" ^ b) (Conference.flows net)))

let show_matrix label policy =
  Format.printf "@.%s@." label;
  List.iter
    (fun (listener, heard) ->
      Format.printf "  %-6s hears: %s@." listener
        (if heard = [] then "(nobody)"
         else
           String.concat ", "
             (List.map
                (fun (speaker, gain) ->
                  if gain = 1.0 then speaker else Printf.sprintf "%s (gain %.1f)" speaker gain)
                heard)))
    (Conference.mixing_matrix policy ~participants)

let () =
  Format.printf "== three-way conference ==@.";
  let net = settle (Conference.build ~users) in
  show_flows "all legs up:" net;

  (* Full muting: the server replaces carol's flowlink by holdslots. *)
  let net = settle (fst (Conference.full_mute ~user:"carol" net)) in
  show_flows "carol fully muted:" net;
  let net = settle (fst (Conference.unmute ~user:"carol" net)) in
  show_flows "carol back:" net;

  (* Partial muting: different mixes of the same three inputs. *)
  show_matrix "business meeting (bob's noisy line muted):" (Conference.Business [ "bob" ]);
  show_matrix "emergency services (bob is the 911 caller):"
    (Conference.Emergency { calltaker = "alice"; caller = "bob"; responder = "carol" });
  show_matrix "agent training (carol coaches alice; bob is the customer):"
    (Conference.Whisper { trainee = "alice"; customer = "bob"; coach = "carol" })
