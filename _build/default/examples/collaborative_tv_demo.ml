(* Collaborative television (paper Figure 8): a TV, a laptop, and a pair
   of headphones share one movie through collaborative-control boxes;
   five media channels ride five tunnels of one signaling channel, so a
   pause affects them all.  Then the laptop's user leaves the shared
   session and fast-forwards on her own.

   Run with: dune exec examples/collaborative_tv_demo.exe *)

open Mediactl_runtime
open Mediactl_apps

let settle net = fst (Netsys.run net)

let show label net =
  Format.printf "%-28s %s@." label
    (match Collab_tv.flows net with
    | [] -> "(nothing playing)"
    | edges -> String.concat ", " (List.map (fun (a, b) -> a ^ "->" ^ b) edges))

let () =
  Format.printf "== collaborative TV ==@.";
  Format.printf "tunnels of the movie channel:@.";
  List.iter (fun (i, role) -> Format.printf "  %d: %s@." i role) Collab_tv.tunnel_roles;

  let net = settle (Collab_tv.build ()) in
  show "watching together:" net;

  (* Codecs differ per device quality. *)
  List.iter
    (fun flow ->
      List.iter
        (fun (s, r, codec) ->
          Format.printf "  %s -> %s in %s@." s r (Mediactl_types.Codec.to_string codec))
        (Mediactl_media.Flow.directed flow))
    (Paths.flows net);

  let net = settle (fst (Collab_tv.pause net)) in
  show "dad hits pause:" net;
  let net = settle (fst (Collab_tv.play net)) in
  show "play:" net;

  let net = settle (fst (Collab_tv.daughter_leaves net)) in
  show "daughter fast-forwards:" net;
  Format.printf "collaboration channel still present: %b@." (Netsys.has_channel net "cc");
  Format.printf "daughter's own channel to the movie server: %b@." (Netsys.has_channel net "mv2")
