examples/prepaid_card.mli:
