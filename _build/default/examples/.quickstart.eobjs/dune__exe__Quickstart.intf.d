examples/quickstart.mli:
