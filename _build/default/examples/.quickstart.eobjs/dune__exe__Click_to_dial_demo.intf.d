examples/click_to_dial_demo.mli:
