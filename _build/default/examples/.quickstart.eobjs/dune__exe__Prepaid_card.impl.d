examples/prepaid_card.ml: Format List Mediactl_apps Mediactl_protocol Mediactl_runtime Mediactl_types Naive Netsys Prepaid String Timed
