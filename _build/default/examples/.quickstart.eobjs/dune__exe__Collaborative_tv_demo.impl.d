examples/collaborative_tv_demo.ml: Collab_tv Format List Mediactl_apps Mediactl_media Mediactl_runtime Mediactl_types Netsys Paths String
