examples/quickstart.ml: Address Codec Format List Local Mediactl_core Mediactl_media Mediactl_runtime Mediactl_types Medium Mute Netsys Paths Semantics String
