examples/conference_demo.ml: Address Codec Conference Format List Local Mediactl_apps Mediactl_core Mediactl_runtime Mediactl_types Netsys Printf String
