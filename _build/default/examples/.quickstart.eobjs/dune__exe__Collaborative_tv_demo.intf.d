examples/collaborative_tv_demo.mli:
