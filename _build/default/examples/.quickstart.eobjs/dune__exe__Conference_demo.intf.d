examples/conference_demo.mli:
