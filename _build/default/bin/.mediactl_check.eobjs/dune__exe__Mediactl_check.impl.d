bin/mediactl_check.ml: Arg Check Cmd Cmdliner Format List Mediactl_core Mediactl_mc Path_model Printf Semantics Term
