bin/mediactl_sim.ml: Arg Cmd Cmdliner Format List Mediactl_apps Mediactl_protocol Mediactl_runtime Mediactl_sip Mediactl_types Netsys Prepaid Relink String Term Timed
