bin/mediactl_sim.mli:
