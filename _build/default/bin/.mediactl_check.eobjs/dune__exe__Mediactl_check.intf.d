bin/mediactl_check.mli:
