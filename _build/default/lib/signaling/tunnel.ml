open Mediactl_types

type end_ = A | B

let opposite = function
  | A -> B
  | B -> A

let pp_end ppf = function
  | A -> Format.pp_print_string ppf "A"
  | B -> Format.pp_print_string ppf "B"

(* Queues as plain lists, oldest first.  Tunnels hold at most a handful
   of signals, and structural equality matters more than asymptotics:
   tunnel contents are part of the model checker's state vector. *)
type t = { a_to_b : Signal.t list; b_to_a : Signal.t list }

let empty = { a_to_b = []; b_to_a = [] }

let send ~from signal t =
  match from with
  | A -> { t with a_to_b = t.a_to_b @ [ signal ] }
  | B -> { t with b_to_a = t.b_to_a @ [ signal ] }

let receive ~at t =
  match at with
  | B -> (
    match t.a_to_b with
    | [] -> None
    | s :: rest -> Some (s, { t with a_to_b = rest }))
  | A -> (
    match t.b_to_a with
    | [] -> None
    | s :: rest -> Some (s, { t with b_to_a = rest }))

let peek ~at t =
  match at with
  | B -> ( match t.a_to_b with [] -> None | s :: _ -> Some s)
  | A -> ( match t.b_to_a with [] -> None | s :: _ -> Some s)

let pending ~toward t =
  match toward with
  | B -> t.a_to_b
  | A -> t.b_to_a

let in_flight t = List.length t.a_to_b + List.length t.b_to_a
let is_empty t = t.a_to_b = [] && t.b_to_a = []

let equal t u =
  List.equal Signal.equal t.a_to_b u.a_to_b && List.equal Signal.equal t.b_to_a u.b_to_a

let pp ppf t =
  let pp_queue = Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Signal.pp in
  Format.fprintf ppf "tunnel{->B:[%a] ->A:[%a]}" pp_queue t.a_to_b pp_queue t.b_to_a
