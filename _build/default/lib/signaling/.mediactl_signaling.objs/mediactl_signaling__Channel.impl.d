lib/signaling/channel.ml: Format List Mediactl_types Meta Printf String Tunnel
