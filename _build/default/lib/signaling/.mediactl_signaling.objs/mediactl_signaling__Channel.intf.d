lib/signaling/channel.mli: Format Mediactl_types Meta Signal Tunnel
