lib/signaling/tunnel.mli: Format Mediactl_types Signal
