lib/signaling/tunnel.ml: Format List Mediactl_types Signal
