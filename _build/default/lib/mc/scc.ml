type t = { component : int array; count : int; cyclic : bool array }

(* Iterative Tarjan: an explicit stack of (vertex, next-successor-index)
   frames avoids overflowing the OCaml stack on million-state graphs. *)
let compute ~succs =
  let n = Array.length succs in
  let succs_arr = Array.map Array.of_list succs in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Stack.create () in
  let component = Array.make n (-1) in
  let comp_count = ref 0 in
  let comp_sizes = ref [] in
  let next_index = ref 0 in
  let frames = Stack.create () in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      Stack.push (root, 0) frames;
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      Stack.push root stack;
      on_stack.(root) <- true;
      while not (Stack.is_empty frames) do
        let v, i = Stack.pop frames in
        if i < Array.length succs_arr.(v) then begin
          Stack.push (v, i + 1) frames;
          let w = succs_arr.(v).(i) in
          if index.(w) = -1 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            Stack.push w stack;
            on_stack.(w) <- true;
            Stack.push (w, 0) frames
          end
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          (* All successors processed: maybe pop a component, then
             propagate the lowlink to the parent frame. *)
          if lowlink.(v) = index.(v) then begin
            let size = ref 0 in
            let continue = ref true in
            while !continue do
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              component.(w) <- !comp_count;
              incr size;
              if w = v then continue := false
            done;
            comp_sizes := !size :: !comp_sizes;
            incr comp_count
          end;
          match Stack.top_opt frames with
          | Some (parent, _) -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | None -> ()
        end
      done
    end
  done;
  let count = !comp_count in
  let sizes = Array.make count 0 in
  List.iteri
    (fun i size -> sizes.(count - 1 - i) <- size)
    !comp_sizes;
  let cyclic = Array.make count false in
  Array.iteri (fun c size -> if size > 1 then cyclic.(c) <- true) sizes;
  (* Self-loops make even singleton components cyclic. *)
  Array.iteri
    (fun v outgoing ->
      if Array.exists (fun w -> w = v) outgoing then cyclic.(component.(v)) <- true)
    succs_arr;
  { component; count; cyclic }

let on_cycle t v = t.cyclic.(t.component.(v))
