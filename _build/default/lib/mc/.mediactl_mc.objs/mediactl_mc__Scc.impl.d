lib/mc/scc.ml: Array List Stack
