lib/mc/explorer.mli: Format
