lib/mc/temporal.mli: Format Mediactl_core
