lib/mc/explorer.ml: Array Format Hashtbl List Marshal Queue
