lib/mc/check.ml: Array Explorer Format List Mediactl_core Option Path_model Printf Semantics String Temporal Unix
