lib/mc/check.mli: Format Mediactl_core Path_model Semantics
