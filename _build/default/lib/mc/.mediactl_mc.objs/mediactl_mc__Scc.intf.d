lib/mc/scc.mli:
