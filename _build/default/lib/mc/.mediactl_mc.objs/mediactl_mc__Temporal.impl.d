lib/mc/temporal.ml: Array Format List Mediactl_core Scc
