lib/mc/path_model.mli: Format Mediactl_core Semantics
