(** Explicit-state exploration of a finite transition system.

    The states must be pure data: the explorer canonicalizes them with
    structural equality and hashing, exactly as Spin does for Promela
    state vectors (paper section VIII-A).  Exploration is breadth-first
    so that witness states found by the temporal checks are shallow. *)

module type SYSTEM = sig
  type state
  type label

  val successors : state -> (label * state) list
  (** All transitions enabled in a state.  An empty list means the state
      is terminal: infinite runs stutter there. *)

  val pp_label : Format.formatter -> label -> unit
  val pp_state : Format.formatter -> state -> unit
end

module Make (S : SYSTEM) : sig
  type graph = {
    states : S.state array;  (** index = state id; id 0 is the initial state *)
    succs : (S.label * int) list array;
    transition_count : int;
    capped : bool;  (** true when [max_states] was hit — results are partial *)
  }

  val explore : ?max_states:int -> S.state -> graph
  (** Breadth-first reachability from the given initial state.  Default
      [max_states] is 1_000_000. *)

  val deadlocks : graph -> int list
  (** Ids of states with no successors. *)

  val path_to : graph -> int -> (S.label option * int) list
  (** A shortest path from the initial state to the given id, as
      [(label leading into state, state id)] pairs; the first element is
      [(None, 0)]. *)
end
