(** The verification models of paper section VIII-A: one signaling path
    per model, with a goal object controlling every slot.

    Exactly as in the paper's Promela models, each goal object has two
    phases.  In its initial {e chaos} phase the slots it controls behave
    nondeterministically — any protocol-legal signal may be sent — and at
    a nondeterministically chosen point the object switches permanently
    to its goal behaviour, from whatever state the slots are in by then.
    Model checking therefore covers traces in which the goal objects
    begin their real work in all reachable combinations of slot and
    tunnel states.

    Users at media endpoints additionally have bounded freedom to change
    their mute flags ([modify] events).  Both freedoms are budgeted so
    the state space stays finite; the budgets are parameters. *)

open Mediactl_core

type config = {
  left : Semantics.end_kind;
  right : Semantics.end_kind;
  flowlinks : int;
  chaos : int;  (** chaos actions available to each goal object *)
  modifies : int;  (** mute changes available to each endpoint *)
  environment_ends : bool;
      (** segment-lemma mode (paper section VIII-B): the path ends are
          pure environments — arbitrary protocol-legal actors that never
          settle into a goal — so the model checks the interior flowlinks
          against {e any} surrounding behaviour *)
}

val config_name : config -> string
(** E.g. ["openslot--fl--holdslot"]. *)

val spec : config -> Semantics.spec

type state

val initial : config -> state

val error : state -> string option
(** A protocol or precondition error reached along the way — reachable
    errors are safety violations. *)

val both_closed : state -> bool
val both_flowing : state -> bool

val all_settled : state -> bool
(** Every goal object has left its chaos phase. *)

val clean : state -> bool
(** Every slot on the path is closed or flowing (the paper's final-state
    safety condition). *)

type label

val pp_label : Format.formatter -> label -> unit
val pp_state : Format.formatter -> state -> unit

val successors : state -> (label * state) list

val standard_configs : chaos:int -> modifies:int -> config list
(** The paper's 12 models: all six endpoint-goal combinations, with zero
    and one flowlink. *)
