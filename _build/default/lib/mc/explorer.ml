module type SYSTEM = sig
  type state
  type label

  val successors : state -> (label * state) list
  val pp_label : Format.formatter -> label -> unit
  val pp_state : Format.formatter -> state -> unit
end

module Make (S : SYSTEM) = struct
  type graph = {
    states : S.state array;
    succs : (S.label * int) list array;
    transition_count : int;
    capped : bool;
  }

  let explore ?(max_states = 1_000_000) initial =
    (* Canonicalize states by their marshalled bytes: hashing one flat
       string is much faster than deep polymorphic hashing of the state
       record, and equality cannot produce false positives. *)
    let ids : (string, int) Hashtbl.t = Hashtbl.create 4096 in
    let states : S.state array ref = ref (Array.make 1024 initial) in
    let succs_tbl : (int, (S.label * int) list) Hashtbl.t = Hashtbl.create 4096 in
    let count = ref 0 in
    let transition_count = ref 0 in
    let capped = ref false in
    let ensure_capacity n =
      if n >= Array.length !states then begin
        let bigger = Array.make (2 * Array.length !states) (!states).(0) in
        Array.blit !states 0 bigger 0 (Array.length !states);
        states := bigger
      end
    in
    let intern state =
      let key = Marshal.to_string state [] in
      match Hashtbl.find_opt ids key with
      | Some id -> (id, false)
      | None ->
        let id = !count in
        incr count;
        ensure_capacity id;
        (!states).(id) <- state;
        Hashtbl.add ids key id;
        (id, true)
    in
    let queue = Queue.create () in
    let id0, _ = intern initial in
    Queue.add id0 queue;
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      if !count >= max_states then capped := true
      else begin
        let state = (!states).(id) in
        let outgoing =
          List.map
            (fun (label, state') ->
              let id', fresh = intern state' in
              if fresh then Queue.add id' queue;
              incr transition_count;
              (label, id'))
            (S.successors state)
        in
        Hashtbl.replace succs_tbl id outgoing
      end
    done;
    let n = !count in
    let states = Array.sub !states 0 n in
    let succs =
      Array.init n (fun id ->
          match Hashtbl.find_opt succs_tbl id with
          | Some l -> l
          | None -> [])
    in
    { states; succs; transition_count = !transition_count; capped = !capped }

  let deadlocks graph =
    let result = ref [] in
    Array.iteri (fun id outgoing -> if outgoing = [] then result := id :: !result) graph.succs;
    List.rev !result

  let path_to graph target =
    (* BFS from 0 recording parents. *)
    let n = Array.length graph.states in
    let parent = Array.make n None in
    let visited = Array.make n false in
    visited.(0) <- true;
    let queue = Queue.create () in
    Queue.add 0 queue;
    let found = ref (target = 0) in
    while (not !found) && not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      List.iter
        (fun (label, id') ->
          if not visited.(id') then begin
            visited.(id') <- true;
            parent.(id') <- Some (label, id);
            if id' = target then found := true;
            Queue.add id' queue
          end)
        graph.succs.(id)
    done;
    let rec build id acc =
      match parent.(id) with
      | None -> (None, id) :: acc
      | Some (label, from) -> build from ((Some label, id) :: acc)
    in
    if !found then build target [] else []
end
