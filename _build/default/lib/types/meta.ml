type t = Setup | Setup_ack | Teardown | Available | Unavailable | Info of string

let equal a b =
  match a, b with
  | Setup, Setup | Setup_ack, Setup_ack | Teardown, Teardown -> true
  | Available, Available | Unavailable, Unavailable -> true
  | Info x, Info y -> String.equal x y
  | (Setup | Setup_ack | Teardown | Available | Unavailable | Info _), _ -> false

let name = function
  | Setup -> "setup"
  | Setup_ack -> "setup-ack"
  | Teardown -> "teardown"
  | Available -> "available"
  | Unavailable -> "unavailable"
  | Info s -> "info:" ^ s

let pp ppf t = Format.pp_print_string ppf (name t)
