(** Media: what kind of stream a channel carries.

    The paper's section III-B: audio and video are the usual media, but
    text or other data can also be a medium, and one medium can encode
    audio and video together.  The medium of a channel is chosen by the
    opener and is fixed for the life of the channel. *)

type t =
  | Audio
  | Video
  | Text
  | Audio_video  (** a single medium encoding both audio and video *)

val all : t list

val codecs : t -> Codec.t list
(** All codecs usable for this medium, best fidelity first.  For
    [Audio_video], a codec must carry video (the audio rides along), so
    video codecs qualify. *)

val supports : t -> Codec.t -> bool
(** [supports m c] is true when codec [c] can encode medium [m]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
