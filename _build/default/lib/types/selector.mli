(** Selectors: declarations of intent to send media to the endpoint
    described by a descriptor (paper section VI-B).

    A selector identifies the descriptor it responds to, gives the IP
    address and port of the sender, and either picks a single codec from
    the descriptor's list or declines to send ([No_media], used when
    [muteOut] is true or when answering a [noMedia] descriptor — the only
    legal response to a [noMedia] descriptor is a [noMedia] selector). *)

type choice =
  | No_media  (** the sender declines to transmit *)
  | Chosen of Codec.t

type t = { responds_to : string * int; sender : Address.t; choice : choice }

val make : responds_to:string * int -> sender:Address.t -> choice -> t

val answer :
  Descriptor.t -> sender:Address.t -> willing:Codec.t list -> mute_out:bool -> t
(** [answer desc ~sender ~willing ~mute_out] builds the selector an
    endpoint sends in response to [desc].  When [mute_out] is true or
    [desc] offers no media, the choice is [No_media]; otherwise it is the
    highest-priority codec of [desc] that also appears in [willing]
    (optimal codec choice, paper section VI-B), or [No_media] if the
    intersection is empty. *)

val responds_to_descriptor : t -> Descriptor.t -> bool
(** True when this selector answers exactly that descriptor (same owner
    and version).  Flowlinks use this to discard obsolete selectors. *)

val transmits : t -> bool
(** True when the selector carries a real codec. *)

val codec : t -> Codec.t option

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
