(** Descriptors: unilateral self-descriptions of an endpoint as a
    {e receiver} of media (paper section VI-B).

    A descriptor contains an IP address, port number, and priority-ordered
    list of codecs the endpoint can handle.  If the endpoint does not wish
    to receive media ([muteIn] true), the only offered "codec" is the
    distinguished pseudo-codec [noMedia], represented here by the
    {!offer} constructor [No_media].

    Descriptors are identified by [(owner, version)] so that a selector
    can declare exactly which descriptor it responds to.  [owner] names
    the endpoint that authored the descriptor; [version] increases each
    time that endpoint re-describes itself.  Identification is structural,
    which keeps states canonical for the model checker. *)

type offer =
  | No_media  (** the endpoint refuses inward media (muteIn) *)
  | Media of Codec.t list
      (** priority-ordered, best first; invariant: non-empty *)

type t = { owner : string; version : int; addr : Address.t; offer : offer }

val make : owner:string -> version:int -> Address.t -> Codec.t list -> t
(** [make ~owner ~version addr codecs] builds a media-offering descriptor.
    Raises [Invalid_argument] when [codecs] is empty (use {!no_media}) or
    when [owner] is empty. *)

val no_media : owner:string -> version:int -> Address.t -> t
(** A descriptor refusing inward media. *)

val id : t -> string * int
(** The identification [(owner, version)] a selector responds to. *)

val offers_media : t -> bool

val codecs : t -> Codec.t list
(** Offered codecs, best first; [[]] for a [No_media] descriptor. *)

val supports : t -> Codec.t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
