type offer = No_media | Media of Codec.t list

type t = { owner : string; version : int; addr : Address.t; offer : offer }

let check_owner owner =
  if owner = "" then invalid_arg "Descriptor: empty owner"

let make ~owner ~version addr codecs =
  check_owner owner;
  if codecs = [] then invalid_arg "Descriptor.make: empty codec list";
  { owner; version; addr; offer = Media codecs }

let no_media ~owner ~version addr =
  check_owner owner;
  { owner; version; addr; offer = No_media }

let id t = (t.owner, t.version)
let offers_media t = t.offer <> No_media

let codecs t =
  match t.offer with
  | No_media -> []
  | Media cs -> cs

let supports t c = List.exists (Codec.equal c) (codecs t)

let equal a b =
  a.owner = b.owner && a.version = b.version
  && Address.equal a.addr b.addr
  && a.offer = b.offer

let compare = Stdlib.compare

let pp ppf t =
  match t.offer with
  | No_media -> Format.fprintf ppf "desc(%s#%d@%a noMedia)" t.owner t.version Address.pp t.addr
  | Media cs ->
    Format.fprintf ppf "desc(%s#%d@%a [%a])" t.owner t.version Address.pp t.addr
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         Codec.pp)
      cs
