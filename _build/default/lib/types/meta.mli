(** Meta-signals: signals that refer to a signaling channel as a whole and
    can affect all the tunnels within it (paper section III-A).

    Meta-signals set up and tear down signaling channels, indicate whether
    the intended far endpoint is currently available, and carry
    application-level indications (for example the prepaid-card resource
    telling its server that the user has paid). *)

type t =
  | Setup       (** create the signaling channel *)
  | Setup_ack   (** far end confirms channel creation *)
  | Teardown    (** destroy the channel, all its tunnels and slots *)
  | Available   (** the intended far endpoint can take the call *)
  | Unavailable (** the intended far endpoint is busy or absent *)
  | Info of string
      (** application indication, e.g. ["paid"], ["click"], ["timeout"] *)

val equal : t -> t -> bool
val name : t -> string
val pp : Format.formatter -> t -> unit
