type t = { mute_in : bool; mute_out : bool }

let none = { mute_in = false; mute_out = false }
let both = { mute_in = true; mute_out = true }
let in_only = { mute_in = true; mute_out = false }
let out_only = { mute_in = false; mute_out = true }

let equal a b = a.mute_in = b.mute_in && a.mute_out = b.mute_out

let pp ppf t =
  Format.fprintf ppf "{in=%s out=%s}"
    (if t.mute_in then "muted" else "open")
    (if t.mute_out then "muted" else "open")
