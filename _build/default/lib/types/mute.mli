(** Mute flags carried by [open], [accept], and [modify] events.

    [mute_in] suspends inward media flow desired at this end; [mute_out]
    suspends outward flow.  Each end of a channel saves and implements
    only the values chosen at its own end (paper section III-B): media
    flows left-to-right only if [not LmuteOut && not RmuteIn]. *)

type t = { mute_in : bool; mute_out : bool }

val none : t
(** Neither direction muted. *)

val both : t
(** Both directions muted — what a server slot masquerading as a media
    endpoint uses, since it can neither send nor receive packets. *)

val in_only : t
val out_only : t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
