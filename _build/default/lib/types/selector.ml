type choice = No_media | Chosen of Codec.t

type t = { responds_to : string * int; sender : Address.t; choice : choice }

let make ~responds_to ~sender choice = { responds_to; sender; choice }

let answer desc ~sender ~willing ~mute_out =
  let choice =
    if mute_out then No_media
    else
      let offered = Descriptor.codecs desc in
      let can_send c = List.exists (Codec.equal c) willing in
      match List.find_opt can_send offered with
      | Some c -> Chosen c
      | None -> No_media
  in
  { responds_to = Descriptor.id desc; sender; choice }

let responds_to_descriptor t desc =
  let owner, version = t.responds_to in
  let d_owner, d_version = Descriptor.id desc in
  String.equal owner d_owner && version = d_version

let transmits t =
  match t.choice with
  | No_media -> false
  | Chosen _ -> true

let codec t =
  match t.choice with
  | No_media -> None
  | Chosen c -> Some c

let equal a b =
  a.responds_to = b.responds_to
  && Address.equal a.sender b.sender
  && a.choice = b.choice

let compare = Stdlib.compare

let pp ppf t =
  let owner, version = t.responds_to in
  match t.choice with
  | No_media -> Format.fprintf ppf "sel(->%s#%d noMedia)" owner version
  | Chosen c ->
    Format.fprintf ppf "sel(->%s#%d from %a using %a)" owner version Address.pp t.sender
      Codec.pp c
