(** Coder-decoders (codecs): data formats for a medium.

    The paper (section VI-A) uses audio codecs such as G.711 (high
    fidelity, high bandwidth) and G.726 (lower fidelity, lower bandwidth)
    as running examples.  Codecs here are symbolic: the simulator needs
    their identity, kind, bandwidth, and a fidelity rank, not their bit
    syntax.  The distinguished pseudo-codec [noMedia] of the paper is
    represented one level up, in {!Descriptor.offer} and
    {!Selector.choice}, so that a [Codec.t] is always a real codec. *)

type t =
  | G711  (** audio, 64 kb/s, toll quality *)
  | G726  (** audio, 32 kb/s *)
  | G729  (** audio, 8 kb/s *)
  | Ilbc  (** audio, 15 kb/s, loss-robust *)
  | L16   (** audio, 256 kb/s linear PCM *)
  | Amr_wb (** audio, 24 kb/s wideband *)
  | H261  (** video, 384 kb/s *)
  | H263  (** video, 512 kb/s *)
  | H264  (** video, 1024 kb/s *)
  | Mpeg4 (** video, 768 kb/s *)
  | T140  (** real-time text, 1 kb/s *)
  | Rtt   (** redundant real-time text, 2 kb/s *)

(** The kind of payload a codec encodes. *)
type kind = Audio_codec | Video_codec | Text_codec

val all : t list
(** Every codec, in no particular order. *)

val kind : t -> kind

val bandwidth_kbps : t -> int
(** Nominal bandwidth consumed by a stream in this codec. *)

val fidelity : t -> int
(** Relative fidelity rank within a kind; larger is better.  Used by
    endpoints to build priority-ordered descriptor codec lists. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string}; case-insensitive. *)

val pp : Format.formatter -> t -> unit
