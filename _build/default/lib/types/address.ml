type t = { host : string; port : int }

let v host port =
  if host = "" then invalid_arg "Address.v: empty host";
  if port < 1 || port > 65535 then invalid_arg "Address.v: port out of range";
  { host; port }

let equal a b = a.host = b.host && a.port = b.port
let compare = Stdlib.compare
let to_string a = Printf.sprintf "%s:%d" a.host a.port
let pp ppf a = Format.pp_print_string ppf (to_string a)
