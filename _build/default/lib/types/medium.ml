type t = Audio | Video | Text | Audio_video

let all = [ Audio; Video; Text; Audio_video ]

let supports m c =
  match m, Codec.kind c with
  | Audio, Codec.Audio_codec -> true
  | Video, Codec.Video_codec -> true
  | Text, Codec.Text_codec -> true
  | Audio_video, Codec.Video_codec -> true
  | (Audio | Video | Text | Audio_video), _ -> false

let codecs m =
  let usable = List.filter (supports m) Codec.all in
  let by_fidelity a b = Stdlib.compare (Codec.fidelity b) (Codec.fidelity a) in
  List.sort by_fidelity usable

let equal a b = a = b
let compare = Stdlib.compare

let to_string = function
  | Audio -> "audio"
  | Video -> "video"
  | Text -> "text"
  | Audio_video -> "audio+video"

let of_string s =
  match String.lowercase_ascii s with
  | "audio" -> Some Audio
  | "video" -> Some Video
  | "text" -> Some Text
  | "audio+video" -> Some Audio_video
  | _ -> None

let pp ppf m = Format.pp_print_string ppf (to_string m)
