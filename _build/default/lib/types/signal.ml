type t =
  | Open of Medium.t * Descriptor.t
  | Oack of Descriptor.t
  | Close
  | Closeack
  | Describe of Descriptor.t
  | Select of Selector.t

let descriptor = function
  | Open (_, d) | Oack d | Describe d -> Some d
  | Close | Closeack | Select _ -> None

let selector = function
  | Select s -> Some s
  | Open _ | Oack _ | Close | Closeack | Describe _ -> None

let name = function
  | Open _ -> "open"
  | Oack _ -> "oack"
  | Close -> "close"
  | Closeack -> "closeack"
  | Describe _ -> "describe"
  | Select _ -> "select"

let equal a b =
  match a, b with
  | Open (m1, d1), Open (m2, d2) -> Medium.equal m1 m2 && Descriptor.equal d1 d2
  | Oack d1, Oack d2 -> Descriptor.equal d1 d2
  | Close, Close -> true
  | Closeack, Closeack -> true
  | Describe d1, Describe d2 -> Descriptor.equal d1 d2
  | Select s1, Select s2 -> Selector.equal s1 s2
  | (Open _ | Oack _ | Close | Closeack | Describe _ | Select _), _ -> false

let pp ppf = function
  | Open (m, d) -> Format.fprintf ppf "open(%a, %a)" Medium.pp m Descriptor.pp d
  | Oack d -> Format.fprintf ppf "oack(%a)" Descriptor.pp d
  | Close -> Format.pp_print_string ppf "close"
  | Closeack -> Format.pp_print_string ppf "closeack"
  | Describe d -> Format.fprintf ppf "describe(%a)" Descriptor.pp d
  | Select s -> Format.fprintf ppf "select(%a)" Selector.pp s
