lib/types/medium.mli: Codec Format
