lib/types/mute.ml: Format
