lib/types/address.mli: Format
