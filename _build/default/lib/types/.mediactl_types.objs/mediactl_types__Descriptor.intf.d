lib/types/descriptor.mli: Address Codec Format
