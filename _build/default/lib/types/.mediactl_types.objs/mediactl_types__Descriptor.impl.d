lib/types/descriptor.ml: Address Codec Format List Stdlib
