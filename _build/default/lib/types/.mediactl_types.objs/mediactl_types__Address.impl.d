lib/types/address.ml: Format Printf Stdlib
