lib/types/selector.ml: Address Codec Descriptor Format List Stdlib String
