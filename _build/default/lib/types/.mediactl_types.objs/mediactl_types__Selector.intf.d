lib/types/selector.mli: Address Codec Descriptor Format
