lib/types/signal.mli: Descriptor Format Medium Selector
