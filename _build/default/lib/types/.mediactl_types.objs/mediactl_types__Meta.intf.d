lib/types/meta.mli: Format
