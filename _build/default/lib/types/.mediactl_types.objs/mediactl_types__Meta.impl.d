lib/types/meta.ml: Format String
