lib/types/signal.ml: Descriptor Format Medium Selector
