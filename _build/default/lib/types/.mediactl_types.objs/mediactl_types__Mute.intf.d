lib/types/mute.mli: Format
