lib/types/codec.mli: Format
