lib/types/medium.ml: Codec Format List Stdlib String
