lib/types/codec.ml: Format List Stdlib String
