type t =
  | G711
  | G726
  | G729
  | Ilbc
  | L16
  | Amr_wb
  | H261
  | H263
  | H264
  | Mpeg4
  | T140
  | Rtt

type kind = Audio_codec | Video_codec | Text_codec

let all = [ G711; G726; G729; Ilbc; L16; Amr_wb; H261; H263; H264; Mpeg4; T140; Rtt ]

let kind = function
  | G711 | G726 | G729 | Ilbc | L16 | Amr_wb -> Audio_codec
  | H261 | H263 | H264 | Mpeg4 -> Video_codec
  | T140 | Rtt -> Text_codec

let bandwidth_kbps = function
  | G711 -> 64
  | G726 -> 32
  | G729 -> 8
  | Ilbc -> 15
  | L16 -> 256
  | Amr_wb -> 24
  | H261 -> 384
  | H263 -> 512
  | H264 -> 1024
  | Mpeg4 -> 768
  | T140 -> 1
  | Rtt -> 2

let fidelity = function
  | L16 -> 6
  | G711 -> 5
  | Amr_wb -> 4
  | G726 -> 3
  | Ilbc -> 2
  | G729 -> 1
  | H264 -> 4
  | Mpeg4 -> 3
  | H263 -> 2
  | H261 -> 1
  | Rtt -> 2
  | T140 -> 1

let equal a b = a = b
let compare = Stdlib.compare

let to_string = function
  | G711 -> "G.711"
  | G726 -> "G.726"
  | G729 -> "G.729"
  | Ilbc -> "iLBC"
  | L16 -> "L16"
  | Amr_wb -> "AMR-WB"
  | H261 -> "H.261"
  | H263 -> "H.263"
  | H264 -> "H.264"
  | Mpeg4 -> "MPEG-4"
  | T140 -> "T.140"
  | Rtt -> "RTT"

let of_string s =
  let s = String.lowercase_ascii s in
  let matches c = String.lowercase_ascii (to_string c) = s in
  List.find_opt matches all

let pp ppf c = Format.pp_print_string ppf (to_string c)
