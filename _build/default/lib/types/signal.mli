(** Tunnel signals: the media-control protocol vocabulary of paper
    section VI-B, Figure 9.

    The protocol operates separately in each tunnel of each signaling
    channel; each slot is a protocol endpoint.  [Open] requests a media
    channel, carrying the requested medium and the opener's descriptor;
    [Oack] accepts, carrying the acceptor's descriptor; [Close] closes
    (and plays the role of reject); [Closeack] acknowledges a close;
    [Describe] updates the sender's descriptor at any time after oack;
    [Select] responds to a descriptor with the sender's choice. *)

type t =
  | Open of Medium.t * Descriptor.t
  | Oack of Descriptor.t
  | Close
  | Closeack
  | Describe of Descriptor.t
  | Select of Selector.t

val descriptor : t -> Descriptor.t option
(** The descriptor carried, if any ([Open], [Oack], [Describe]). *)

val selector : t -> Selector.t option

val name : t -> string
(** Short wire name: ["open"], ["oack"], ["close"], ["closeack"],
    ["describe"], ["select"]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
