(** Transport addresses for media: an IP host and port.

    A media channel's global attributes include an IP address and port for
    each endpoint (paper section III-B); descriptors and selectors carry
    these so that endpoints learn where to send packets. *)

type t = { host : string; port : int }

val v : string -> int -> t
(** [v host port] builds an address.  Raises [Invalid_argument] if [port]
    is outside 1..65535 or [host] is empty. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
