(** Summary statistics over samples collected during a simulation run. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t 0.5] is the median.  Raises [Invalid_argument] when no
    samples were added or the rank is outside [0, 1]. *)

val pp : Format.formatter -> t -> unit
