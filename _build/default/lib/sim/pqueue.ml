type 'a node = { key : float; seq : int; value : 'a; left : 'a t; right : 'a t; rank : int }
and 'a t = Leaf | Node of 'a node

let empty = Leaf

let is_empty = function
  | Leaf -> true
  | Node _ -> false

let rank = function
  | Leaf -> 0
  | Node n -> n.rank

let precedes a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let make key seq value left right =
  if rank left >= rank right then
    Node { key; seq; value; left; right; rank = rank right + 1 }
  else Node { key; seq; value; left = right; right = left; rank = rank left + 1 }

let rec merge a b =
  match a, b with
  | Leaf, t | t, Leaf -> t
  | Node na, Node nb ->
    if precedes na nb then make na.key na.seq na.value na.left (merge na.right b)
    else make nb.key nb.seq nb.value nb.left (merge nb.right a)

let insert t ~key ~seq value =
  merge t (Node { key; seq; value; left = Leaf; right = Leaf; rank = 1 })

let pop = function
  | Leaf -> None
  | Node n -> Some ((n.key, n.seq, n.value), merge n.left n.right)

let peek_key = function
  | Leaf -> None
  | Node n -> Some n.key

let rec size = function
  | Leaf -> 0
  | Node n -> 1 + size n.left + size n.right
