(** A purely functional priority queue (leftist heap) keyed by floats,
    with a monotone sequence number to break ties deterministically:
    events scheduled earlier pop first among equal timestamps. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val insert : 'a t -> key:float -> seq:int -> 'a -> 'a t

val pop : 'a t -> ((float * int * 'a) * 'a t) option
(** Smallest key first; ties broken by smallest sequence number. *)

val peek_key : 'a t -> float option
