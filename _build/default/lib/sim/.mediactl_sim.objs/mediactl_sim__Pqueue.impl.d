lib/sim/pqueue.ml:
