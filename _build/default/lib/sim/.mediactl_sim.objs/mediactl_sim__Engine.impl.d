lib/sim/engine.ml: Pqueue Rng
