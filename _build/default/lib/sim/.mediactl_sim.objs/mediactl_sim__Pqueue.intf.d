lib/sim/pqueue.mli:
