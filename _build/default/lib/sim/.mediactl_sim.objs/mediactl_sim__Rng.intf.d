lib/sim/rng.mli:
