type 'e t = {
  mutable clock : float;
  mutable queue : 'e Pqueue.t;
  mutable seq : int;
  rng : Rng.t;
}

let create ?(seed = 42) () = { clock = 0.0; queue = Pqueue.empty; seq = 0; rng = Rng.create seed }

let now t = t.clock
let rng t = t.rng

let schedule t ~delay event =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  t.queue <- Pqueue.insert t.queue ~key:(t.clock +. delay) ~seq:t.seq event;
  t.seq <- t.seq + 1

let pending t = Pqueue.size t.queue

let run t ?(until = infinity) ?(max_events = max_int) handler =
  let processed = ref 0 in
  let continue = ref true in
  while !continue && !processed < max_events do
    match Pqueue.pop t.queue with
    | None -> continue := false
    | Some ((time, _, event), rest) ->
      if time > until then continue := false
      else begin
        t.queue <- rest;
        t.clock <- time;
        handler t event;
        incr processed
      end
  done;
  !processed
