open Mediactl_types
open Mediactl_protocol

type decision = Accept | Reject | Ring

type indication = Ui_opened of Medium.t | Ui_accepted | Ui_closed | Ui_modified

type t = { local : Local.t; policy : Medium.t -> decision; ringing : bool }

type outcome = { ep : t; slot : Slot.t; out : Signal.t list; ui : indication list }

let ( let* ) = Result.bind
let slot_op r = Result.map_error Goal_error.of_slot r

let create local ~policy = { local; policy; ringing = false }

let local t = t.local
let ringing t = t.ringing

let open_ t slot medium =
  if not (Slot.is_closed slot) then
    Error (Goal_error.precondition "open: the slot is not closed")
  else
    let* slot, signal = slot_op (Slot.send_open slot medium (Local.descriptor t.local)) in
    Ok { ep = t; slot; out = [ signal ]; ui = [] }

let accept t slot =
  if not t.ringing then Error (Goal_error.precondition "accept: nothing is ringing")
  else
    let* slot, out = React.accept t.local slot in
    Ok { ep = { t with ringing = false }; slot; out; ui = [] }

let reject t slot =
  if not t.ringing then Error (Goal_error.precondition "reject: nothing is ringing")
  else
    let* slot, signal = slot_op (Slot.send_close slot) in
    Ok { ep = { t with ringing = false }; slot; out = [ signal ]; ui = [] }

let close t slot =
  let* slot, signal = slot_op (Slot.send_close slot) in
  Ok { ep = { t with ringing = false }; slot; out = [ signal ]; ui = [] }

let modify t slot mute =
  let local = Local.modify t.local mute in
  let t = { t with local } in
  if Slot.is_flowing slot then
    let* slot, out = React.re_describe local slot in
    Ok { ep = t; slot; out; ui = [] }
  else Ok { ep = t; slot; out = []; ui = [] }

let react t (slot, out, ui) note =
  match note with
  | Slot.Opened_by_peer -> (
    let medium = Option.value slot.Slot.medium ~default:Medium.Audio in
    let ui = ui @ [ Ui_opened medium ] in
    match t.policy medium with
    | Accept ->
      let* slot, signals = React.accept t.local slot in
      Ok (t, slot, out @ signals, ui)
    | Reject ->
      let* slot, signal = slot_op (Slot.send_close slot) in
      Ok (t, slot, out @ [ signal ], ui)
    | Ring -> Ok ({ t with ringing = true }, slot, out, ui))
  | Slot.Accepted_by_peer ->
    let* slot, signals = React.answer t.local slot in
    Ok (t, slot, out @ signals, ui @ [ Ui_accepted ])
  | Slot.New_descriptor ->
    let* slot, signals = React.answer t.local slot in
    Ok (t, slot, out @ signals, ui @ [ Ui_modified ])
  | Slot.Closed_by_peer -> Ok ({ t with ringing = false }, slot, out, ui @ [ Ui_closed ])
  | Slot.Close_confirmed -> Ok (t, slot, out, ui @ [ Ui_closed ])
  | Slot.Race_lost ->
    (* Our open crossed theirs and lost: we are now being offered the
       channel and the policy decides again (the [Opened_by_peer] that
       accompanies this note drives that). *)
    Ok (t, slot, out, ui)
  | Slot.Race_won | Slot.New_selector | Slot.Dropped _ -> Ok (t, slot, out, ui)

let on_signal t slot signal =
  let* slot, auto, notes = slot_op (Slot.receive slot signal) in
  let* t, slot, out, ui =
    List.fold_left
      (fun acc note ->
        let* t, slot, out, ui = acc in
        react t (slot, out, ui) note)
      (Ok (t, slot, auto, []))
      notes
  in
  Ok { ep = t; slot; out; ui }
