lib/core/endpoint.ml: Goal_error List Local Mediactl_protocol Mediactl_types Medium Option React Result Signal Slot
