lib/core/flow_link.ml: Format Goal_error List Mediactl_protocol Mediactl_types Medium Result Selector Signal Slot
