lib/core/close_slot.mli: Format Goal_error Mediactl_protocol Mediactl_types Signal Slot
