lib/core/open_slot.mli: Format Goal_error Local Mediactl_protocol Mediactl_types Medium Mute Signal Slot
