lib/core/hold_slot.ml: Format Goal_error List Local Mediactl_protocol Mediactl_types React Result Signal Slot
