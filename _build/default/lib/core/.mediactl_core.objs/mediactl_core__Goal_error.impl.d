lib/core/goal_error.ml: Format Mediactl_protocol
