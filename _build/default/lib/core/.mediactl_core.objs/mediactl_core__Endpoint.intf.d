lib/core/endpoint.mli: Goal_error Local Mediactl_protocol Mediactl_types Medium Mute Signal Slot
