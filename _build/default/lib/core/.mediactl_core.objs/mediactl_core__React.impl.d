lib/core/react.ml: Goal_error Local Mediactl_protocol Result Slot
