lib/core/flow_link.mli: Format Goal_error Mediactl_protocol Mediactl_types Signal Slot
