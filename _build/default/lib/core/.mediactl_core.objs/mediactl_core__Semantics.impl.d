lib/core/semantics.ml: Bool Descriptor Format Mediactl_protocol Mediactl_types Medium Mute Selector Slot
