lib/core/chain.mli: Format Goal_error Local Mediactl_protocol Mediactl_types Medium Mute Semantics Slot Slot_state
