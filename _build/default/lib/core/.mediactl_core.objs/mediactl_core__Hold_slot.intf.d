lib/core/hold_slot.mli: Format Goal_error Local Mediactl_protocol Mediactl_types Mute Signal Slot
