lib/core/open_slot.ml: Format Goal_error List Local Mediactl_protocol Mediactl_types Medium React Result Signal Slot
