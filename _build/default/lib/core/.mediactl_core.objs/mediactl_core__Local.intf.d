lib/core/local.mli: Address Codec Descriptor Format Mediactl_types Mute Selector
