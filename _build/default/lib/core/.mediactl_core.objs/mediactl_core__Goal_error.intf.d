lib/core/goal_error.mli: Format Mediactl_protocol
