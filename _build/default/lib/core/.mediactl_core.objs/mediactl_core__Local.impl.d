lib/core/local.ml: Address Codec Descriptor Format Mediactl_types Mute Option Selector
