lib/core/close_slot.ml: Format Goal_error List Mediactl_protocol Mediactl_types Result Signal Slot
