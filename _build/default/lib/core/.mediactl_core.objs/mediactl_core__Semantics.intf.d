lib/core/semantics.mli: Format Mediactl_protocol Mediactl_types Mute Slot
