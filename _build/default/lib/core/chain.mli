(** An executable signaling path: a maximal chain of tunnels and
    flowlinks with a goal object controlling each end (paper section
    III-A, Figure 4).

    The chain is a pure transition system.  Its states are the goal
    objects, slots, and tunnel contents; its transitions deliver one
    signal from a tunnel to the adjacent node, change an endpoint's mute
    flags, or reprogram an endpoint with a different goal.  Purity means
    the very same goal-object code is executed by the discrete-event
    simulator and explored exhaustively by the model checker. *)

open Mediactl_types
open Mediactl_protocol

(** How a path end is programmed. *)
type end_spec =
  | Open_spec of Local.t * Medium.t
  | Close_spec
  | Hold_spec of Local.t

val end_kind : end_spec -> Semantics.end_kind

(** Identifies a path end. *)
type end_ = Lend | Rend

(** Which way a delivered signal is travelling. *)
type direction = Rightward | Leftward

val pp_direction : Format.formatter -> direction -> unit

type t

val create :
  ?initiator_left:bool list ->
  left:end_spec -> flowlinks:int -> right:end_spec -> unit ->
  (t, Goal_error.t) result
(** [create ~left ~flowlinks ~right ()] builds a path with [flowlinks]
    interior flowlinks (hence [flowlinks + 1] tunnels) and starts every
    goal object.  [initiator_left] says, per tunnel, whether its left
    node initiated the underlying signaling channel (and so wins open
    races); it defaults to all [true]. *)

(** {2 Observations} *)

val flowlink_count : t -> int
val tunnel_count : t -> int
val left_slot : t -> Slot.t
val right_slot : t -> Slot.t
val slot_states : t -> Slot_state.t list
(** Every slot on the path, left to right. *)

val left_kind : t -> Semantics.end_kind
val right_kind : t -> Semantics.end_kind
val spec : t -> Semantics.spec

val both_closed : t -> bool
val both_flowing : t -> bool
val enabled_agrees : t -> bool
(** The section-V enabledness equations at the path ends; vacuously true
    when an end has no mute flags (closeslot). *)

val left_mute : t -> Mute.t option
val right_mute : t -> Mute.t option

val quiescent : t -> bool
(** No signal in flight in any tunnel. *)

val signals_in_flight : t -> int

val final_states_clean : t -> bool
(** The safety condition checked in quiescent states (paper section
    VIII-A): every slot on the path is closed or flowing. *)

(** {2 Transitions} *)

val deliverable : t -> (int * direction) list
(** Tunnels with a pending signal, as [(tunnel index, direction)]. *)

val deliver : t -> int -> direction -> (t, Goal_error.t) result option
(** Deliver the oldest signal on that tunnel in that direction to the
    adjacent node; [None] when the queue is empty. *)

val modify : t -> end_ -> Mute.t -> (t, Goal_error.t) result
(** Change the mute flags chosen at a path end (a [modify] event of the
    user interface).  Fails on a closeslot end. *)

val reprogram : t -> end_ -> end_spec -> (t, Goal_error.t) result
(** Replace the goal object controlling a path end, as a box program does
    when it changes state.  [Open_spec] requires the slot to be closed
    (the openslot precondition). *)

val run : ?max_steps:int -> t -> (t * bool, Goal_error.t) result
(** Deterministic scheduler: repeatedly deliver the first deliverable
    signal until quiescence or [max_steps] (default 10_000) deliveries.
    Returns the final chain and whether it is quiescent. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
