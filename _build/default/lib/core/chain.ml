open Mediactl_types
open Mediactl_protocol
open Mediactl_signaling

type end_spec =
  | Open_spec of Local.t * Medium.t
  | Close_spec
  | Hold_spec of Local.t

let end_kind = function
  | Open_spec _ -> Semantics.Open_end
  | Close_spec -> Semantics.Close_end
  | Hold_spec _ -> Semantics.Hold_end

type end_ = Lend | Rend

type direction = Rightward | Leftward

let pp_direction ppf = function
  | Rightward -> Format.pp_print_string ppf "->"
  | Leftward -> Format.pp_print_string ppf "<-"

type node_goal =
  | G_open of Open_slot.t
  | G_close of Close_slot.t
  | G_hold of Hold_slot.t

type endpoint = { goal : node_goal; slot : Slot.t }

type link = { fl : Flow_link.t; lslot : Slot.t; rslot : Slot.t }

(* [left_is_a] records which tunnel end is the channel-initiator (A)
   end; the node holding A wins open races. *)
type oriented_tunnel = { q : Tunnel.t; left_is_a : bool }

type t = {
  left : endpoint;
  links : link list;
  tuns : oriented_tunnel list;  (* length = List.length links + 1 *)
  right : endpoint;
}

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Tunnel plumbing                                                     *)

let nth_tun t i = List.nth t.tuns i

let set_tun t i q =
  { t with tuns = List.mapi (fun j ot -> if j = i then { ot with q } else ot) t.tuns }

let send_from_left t i signal =
  let ot = nth_tun t i in
  let from = if ot.left_is_a then Tunnel.A else Tunnel.B in
  set_tun t i (Tunnel.send ~from signal ot.q)

let send_from_right t i signal =
  let ot = nth_tun t i in
  let from = if ot.left_is_a then Tunnel.B else Tunnel.A in
  set_tun t i (Tunnel.send ~from signal ot.q)

let receive_at_right t i =
  let ot = nth_tun t i in
  let at = if ot.left_is_a then Tunnel.B else Tunnel.A in
  match Tunnel.receive ~at ot.q with
  | None -> None
  | Some (signal, q) -> Some (signal, set_tun t i q)

let receive_at_left t i =
  let ot = nth_tun t i in
  let at = if ot.left_is_a then Tunnel.A else Tunnel.B in
  match Tunnel.receive ~at ot.q with
  | None -> None
  | Some (signal, q) -> Some (signal, set_tun t i q)

(* ------------------------------------------------------------------ *)
(* Endpoint goal dispatch                                              *)

let endpoint_start spec slot =
  match spec with
  | Open_spec (local, m) ->
    let* o = Open_slot.start local m slot in
    Ok ({ goal = G_open o.Open_slot.goal; slot = o.Open_slot.slot }, o.Open_slot.out)
  | Close_spec ->
    let* o = Close_slot.start slot in
    Ok ({ goal = G_close o.Close_slot.goal; slot = o.Close_slot.slot }, o.Close_slot.out)
  | Hold_spec local ->
    let* o = Hold_slot.start local slot in
    Ok ({ goal = G_hold o.Hold_slot.goal; slot = o.Hold_slot.slot }, o.Hold_slot.out)

let endpoint_signal ep signal =
  match ep.goal with
  | G_open g ->
    let* o = Open_slot.on_signal g ep.slot signal in
    Ok ({ goal = G_open o.Open_slot.goal; slot = o.Open_slot.slot }, o.Open_slot.out)
  | G_close g ->
    let* o = Close_slot.on_signal g ep.slot signal in
    Ok ({ goal = G_close o.Close_slot.goal; slot = o.Close_slot.slot }, o.Close_slot.out)
  | G_hold g ->
    let* o = Hold_slot.on_signal g ep.slot signal in
    Ok ({ goal = G_hold o.Hold_slot.goal; slot = o.Hold_slot.slot }, o.Hold_slot.out)

let endpoint_modify ep mute =
  match ep.goal with
  | G_open g ->
    let* o = Open_slot.modify g ep.slot mute in
    Ok ({ goal = G_open o.Open_slot.goal; slot = o.Open_slot.slot }, o.Open_slot.out)
  | G_hold g ->
    let* o = Hold_slot.modify g ep.slot mute in
    Ok ({ goal = G_hold o.Hold_slot.goal; slot = o.Hold_slot.slot }, o.Hold_slot.out)
  | G_close _ -> Error (Goal_error.precondition "modify on a closeslot end")

let endpoint_kind ep =
  match ep.goal with
  | G_open _ -> Semantics.Open_end
  | G_close _ -> Semantics.Close_end
  | G_hold _ -> Semantics.Hold_end

let endpoint_mute ep =
  match ep.goal with
  | G_open g -> Some (Open_slot.local g).Local.mute
  | G_hold g -> Some (Hold_slot.local g).Local.mute
  | G_close _ -> None

(* ------------------------------------------------------------------ *)
(* Link plumbing                                                       *)

let nth_link t j = List.nth t.links j

let set_link t j link =
  { t with links = List.mapi (fun k old -> if k = j then link else old) t.links }

(* Route a flowlink emission: side Left goes out on tunnel [j] (where
   the link is the right-hand node), side Right on tunnel [j+1]. *)
let route_link_emissions t j out =
  List.fold_left
    (fun t (side, signal) ->
      match side with
      | Flow_link.Left -> send_from_right t j signal
      | Flow_link.Right -> send_from_left t (j + 1) signal)
    t out

let link_signal t j side signal =
  let link = nth_link t j in
  let* o = Flow_link.on_signal link.fl ~left:link.lslot ~right:link.rslot side signal in
  let link =
    { fl = o.Flow_link.goal; lslot = o.Flow_link.left; rslot = o.Flow_link.right }
  in
  let t = set_link t j link in
  Ok (route_link_emissions t j o.Flow_link.out)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create ?initiator_left ~left ~flowlinks ~right () =
  if flowlinks < 0 then invalid_arg "Chain.create: negative flowlink count";
  let n_tunnels = flowlinks + 1 in
  let orientation =
    match initiator_left with
    | None -> List.init n_tunnels (fun _ -> true)
    | Some l ->
      if List.length l <> n_tunnels then
        invalid_arg "Chain.create: initiator_left length must be flowlinks + 1";
      l
  in
  let role_left i = if List.nth orientation i then Slot.Channel_initiator else Slot.Channel_acceptor in
  let role_right i = if List.nth orientation i then Slot.Channel_acceptor else Slot.Channel_initiator in
  let tuns = List.map (fun left_is_a -> { q = Tunnel.empty; left_is_a }) orientation in
  let* left_ep, left_out =
    endpoint_start left (Slot.create ~label:"L" (role_left 0))
  in
  let* right_ep, right_out =
    endpoint_start right (Slot.create ~label:"R" (role_right (n_tunnels - 1)))
  in
  let* links =
    List.fold_left
      (fun acc j ->
        let* acc = acc in
        let lslot = Slot.create ~label:(Printf.sprintf "fl%d.l" j) (role_right j) in
        let rslot = Slot.create ~label:(Printf.sprintf "fl%d.r" j) (role_left (j + 1)) in
        let* o = Flow_link.start lslot rslot in
        (* Fresh slots are closed, so a starting flowlink emits nothing. *)
        if o.Flow_link.out <> [] then
          Error (Goal_error.precondition "flowlink emitted on closed slots")
        else
          Ok
            (acc
            @ [ { fl = o.Flow_link.goal; lslot = o.Flow_link.left; rslot = o.Flow_link.right } ]))
      (Ok [])
      (List.init flowlinks Fun.id)
  in
  let t = { left = left_ep; links; tuns; right = right_ep } in
  let t = List.fold_left (fun t s -> send_from_left t 0 s) t left_out in
  let t = List.fold_left (fun t s -> send_from_right t (n_tunnels - 1) s) t right_out in
  Ok t

(* ------------------------------------------------------------------ *)
(* Observations                                                        *)

let flowlink_count t = List.length t.links
let tunnel_count t = List.length t.tuns
let left_slot t = t.left.slot
let right_slot t = t.right.slot

let slot_states t =
  (t.left.slot.Slot.state
  :: List.concat_map (fun l -> [ l.lslot.Slot.state; l.rslot.Slot.state ]) t.links)
  @ [ t.right.slot.Slot.state ]

let left_kind t = endpoint_kind t.left
let right_kind t = endpoint_kind t.right
let spec t = Semantics.spec_of (left_kind t) (right_kind t)

let both_closed t = Semantics.both_closed ~left:t.left.slot ~right:t.right.slot
let both_flowing t = Semantics.both_flowing ~left:t.left.slot ~right:t.right.slot

let left_mute t = endpoint_mute t.left
let right_mute t = endpoint_mute t.right

let enabled_agrees t =
  match left_mute t, right_mute t with
  | Some left_mute, Some right_mute ->
    (not (both_flowing t))
    || Semantics.enabled_agrees ~left_mute ~right_mute ~left:t.left.slot ~right:t.right.slot
  | (Some _ | None), _ -> true

let quiescent t = List.for_all (fun ot -> Tunnel.is_empty ot.q) t.tuns

let signals_in_flight t =
  List.fold_left (fun acc ot -> acc + Tunnel.in_flight ot.q) 0 t.tuns

let final_states_clean t =
  let clean = function
    | Slot_state.Closed | Slot_state.Flowing -> true
    | Slot_state.Opening | Slot_state.Opened | Slot_state.Closing -> false
  in
  List.for_all clean (slot_states t)

(* ------------------------------------------------------------------ *)
(* Transitions                                                         *)

let deliverable t =
  List.concat
    (List.mapi
       (fun i ot ->
         let toward_right =
           if Tunnel.pending ~toward:(if ot.left_is_a then Tunnel.B else Tunnel.A) ot.q <> []
           then [ (i, Rightward) ]
           else []
         in
         let toward_left =
           if Tunnel.pending ~toward:(if ot.left_is_a then Tunnel.A else Tunnel.B) ot.q <> []
           then [ (i, Leftward) ]
           else []
         in
         toward_right @ toward_left)
       t.tuns)

let deliver t i direction =
  let n_links = List.length t.links in
  match direction with
  | Rightward -> (
    match receive_at_right t i with
    | None -> None
    | Some (signal, t) ->
      if i = n_links then
        (* The rightmost tunnel feeds the right endpoint. *)
        Some
          (let* ep, out = endpoint_signal t.right signal in
           let t = { t with right = ep } in
           Ok (List.fold_left (fun t s -> send_from_right t i s) t out))
      else
        (* Tunnel [i] feeds the left slot of link [i]. *)
        Some (link_signal t i Flow_link.Left signal))
  | Leftward -> (
    match receive_at_left t i with
    | None -> None
    | Some (signal, t) ->
      if i = 0 then
        Some
          (let* ep, out = endpoint_signal t.left signal in
           let t = { t with left = ep } in
           Ok (List.fold_left (fun t s -> send_from_left t i s) t out))
      else
        (* Tunnel [i] feeds the right slot of link [i - 1]. *)
        Some (link_signal t (i - 1) Flow_link.Right signal))

let modify t which mute =
  match which with
  | Lend ->
    let* ep, out = endpoint_modify t.left mute in
    let t = { t with left = ep } in
    Ok (List.fold_left (fun t s -> send_from_left t 0 s) t out)
  | Rend ->
    let* ep, out = endpoint_modify t.right mute in
    let t = { t with right = ep } in
    Ok (List.fold_left (fun t s -> send_from_right t (tunnel_count t - 1) s) t out)

let reprogram t which spec =
  match which with
  | Lend ->
    let* ep, out = endpoint_start spec t.left.slot in
    let t = { t with left = ep } in
    Ok (List.fold_left (fun t s -> send_from_left t 0 s) t out)
  | Rend ->
    let* ep, out = endpoint_start spec t.right.slot in
    let t = { t with right = ep } in
    Ok (List.fold_left (fun t s -> send_from_right t (tunnel_count t - 1) s) t out)

let run ?(max_steps = 10_000) t =
  let rec loop t steps =
    if steps >= max_steps then Ok (t, false)
    else
      match deliverable t with
      | [] -> Ok (t, true)
      | (i, direction) :: _ -> (
        match deliver t i direction with
        | None -> Ok (t, true)  (* unreachable: deliverable said non-empty *)
        | Some result ->
          let* t = result in
          loop t (steps + 1))
  in
  loop t 0

let equal (a : t) (b : t) = a = b
let hash (t : t) = Hashtbl.hash t

let pp ppf t =
  let pp_link ppf l =
    Format.fprintf ppf "[%a %a %a]" Slot.pp l.lslot Flow_link.pp l.fl Slot.pp l.rslot
  in
  Format.fprintf ppf "@[<v>chain %a .. %a@ left: %a@ links: %a@ tunnels: %a@]"
    Semantics.pp_end_kind (left_kind t) Semantics.pp_end_kind (right_kind t) Slot.pp
    t.left.slot
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_link)
    t.links
    (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf ot -> Tunnel.pp ppf ot.q))
    t.tuns
