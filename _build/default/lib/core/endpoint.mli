(** A genuine media endpoint implementing the user interface of paper
    Figure 5 directly over the protocol.

    The paper's section V notes that media endpoints {e could} be
    programmed with the state-oriented goal primitives, but that
    implementing the events of Figure 5 directly is the natural style for
    devices.  This module is that direct implementation: the user chooses
    [!open], [!accept], [!reject], [!close], and [!modify]; the other end
    of the channel produces [?opened], [?accepted], [?closed], and
    [?modified] indications.  Unlike a holdslot, an endpoint can defer or
    refuse an offered channel — the freedom the user interface grants.

    The slot machine underneath translates the interface to the protocol
    exactly as section VI-C describes: accepts become [oack]s, modifies
    become [describe]/[select] pairs, and rejects become [close]s. *)

open Mediactl_types
open Mediactl_protocol

(** What the user wants done with an offered channel. *)
type decision =
  | Accept  (** answer immediately *)
  | Reject  (** decline immediately *)
  | Ring  (** leave it pending until {!accept} or {!reject} is called *)

(** Indications surfaced to the user, mirroring the [?]-events of
    Figure 5. *)
type indication =
  | Ui_opened of Medium.t  (** the far end requests a channel *)
  | Ui_accepted  (** our open was accepted *)
  | Ui_closed  (** the channel closed (or our open was rejected) *)
  | Ui_modified  (** the far end changed its media description *)

type t

type outcome = { ep : t; slot : Slot.t; out : Signal.t list; ui : indication list }

val create : Local.t -> policy:(Medium.t -> decision) -> t
(** An idle endpoint; [policy] decides what happens when the far end
    opens a channel toward it. *)

val local : t -> Local.t
val ringing : t -> bool
(** True while an offered channel awaits {!accept}/{!reject}. *)

(** {2 User choices (the [!]-events)} *)

val open_ : t -> Slot.t -> Medium.t -> (outcome, Goal_error.t) result
(** [!open]: request a channel; the slot must be closed. *)

val accept : t -> Slot.t -> (outcome, Goal_error.t) result
(** [!accept] a ringing channel. *)

val reject : t -> Slot.t -> (outcome, Goal_error.t) result
(** [!reject] a ringing channel. *)

val close : t -> Slot.t -> (outcome, Goal_error.t) result
(** [!close] the channel in any live state. *)

val modify : t -> Slot.t -> Mute.t -> (outcome, Goal_error.t) result
(** [!modify]: change the mute flags; re-describes when flowing. *)

(** {2 The channel's other end} *)

val on_signal : t -> Slot.t -> Signal.t -> (outcome, Goal_error.t) result
(** Process a signal from the tunnel, producing protocol replies and user
    indications. *)
