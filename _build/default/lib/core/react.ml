(* Internal helpers shared by the endpoint-acting goal objects
   (openslot and holdslot): the standard protocol reactions of a media
   endpoint, parameterized by its local media face. *)

open Mediactl_protocol

let ( let* ) = Result.bind

let slot_op r = Result.map_error Goal_error.of_slot r

let remote_desc slot =
  match slot.Slot.remote_desc with
  | Some d -> Ok d
  | None -> Error (Goal_error.precondition "no remote descriptor cached")

(* Answer the peer's current descriptor with a selector. *)
let answer local slot =
  let* desc = remote_desc slot in
  let sel = Local.selector_for local desc in
  let* slot, signal = slot_op (Slot.send_select slot sel) in
  Ok (slot, [ signal ])

(* Accept a received open: oack with our descriptor, then select
   answering the opener's descriptor (paper Figure 9: !oack / !select). *)
let accept local slot =
  let* desc = remote_desc slot in
  let* slot, oack = slot_op (Slot.send_oack slot (Local.descriptor local)) in
  let sel = Local.selector_for local desc in
  let* slot, select = slot_op (Slot.send_select slot sel) in
  Ok (slot, [ oack; select ])

(* The user changed mute flags while the channel is flowing: advertise
   the new descriptor and re-select against the peer's current
   descriptor so that both directions reflect the new flags. *)
let re_describe local slot =
  let* slot, describe = slot_op (Slot.send_describe slot (Local.descriptor local)) in
  let* desc = remote_desc slot in
  let sel = Local.selector_for local desc in
  let* slot, select = slot_op (Slot.send_select slot sel) in
  Ok (slot, [ describe; select ])
