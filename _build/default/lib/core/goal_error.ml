type t =
  | Protocol of Mediactl_protocol.Slot.error
  | Precondition of string

let of_slot e = Protocol e
let precondition s = Precondition s

let pp ppf = function
  | Protocol e -> Format.fprintf ppf "protocol error: %a" Mediactl_protocol.Slot.pp_error e
  | Precondition s -> Format.fprintf ppf "precondition violated: %s" s

let to_string t = Format.asprintf "%a" pp t
