(** The compositional semantics of signaling paths (paper section V).

    A signaling path is a maximal chain of tunnels and flowlinks.  Each
    path end is controlled by an openslot, closeslot, or holdslot; taking
    symmetry into account there are six path types, each with a
    temporal-logic specification over the path states [bothClosed] and
    [bothFlowing]:

    {ul
    {- close/close, close/hold: [◇□ bothClosed]}
    {- close/open: [◇□ ¬bothFlowing]}
    {- open/open, open/hold: [□◇ bothFlowing]}
    {- hold/hold: [(◇□ bothClosed) ∨ (□◇ bothFlowing)]}}

    The predicates below evaluate the path states on the two endpoint
    slots, using the implementation-level definition of [bothFlowing]
    from paper section VIII-A: both ends flowing, each end has most
    recently received the descriptor most recently sent by the other end,
    and each end has most recently received a selector responding to its
    own most recent descriptor. *)

open Mediactl_types
open Mediactl_protocol

(** Which goal primitive controls a path end. *)
type end_kind = Open_end | Close_end | Hold_end

val pp_end_kind : Format.formatter -> end_kind -> unit

(** The four distinct temporal specifications. *)
type spec =
  | Eventually_always_closed  (** [◇□ bothClosed] *)
  | Eventually_always_not_flowing  (** [◇□ ¬bothFlowing] *)
  | Always_eventually_flowing  (** [□◇ bothFlowing] *)
  | Closed_or_flowing
      (** [(◇□ bothClosed) ∨ (□◇ bothFlowing)], evaluated per run *)

val spec_of : end_kind -> end_kind -> spec
(** The specification governing a path with the given end controls. *)

val spec_to_string : spec -> string
val pp_spec : Format.formatter -> spec -> unit

val both_closed : left:Slot.t -> right:Slot.t -> bool

val both_flowing : left:Slot.t -> right:Slot.t -> bool
(** The model-checking definition of [bothFlowing] (section VIII-A):
    descriptor and selector freshness at both ends, plus equal media. *)

val enabled_agrees :
  left_mute:Mute.t -> right_mute:Mute.t -> left:Slot.t -> right:Slot.t -> bool
(** The section-V enabledness equations, checked against the mute flags
    chosen at the two ends: [Lenabled = ¬LmuteIn ∧ ¬RmuteOut] and
    [Renabled = ¬RmuteIn ∧ ¬LmuteOut].  Meaningful in a [bothFlowing]
    state; [Lenabled] is the left slot's receive-enabled bit. *)
