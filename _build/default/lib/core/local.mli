(** The local media face of a slot: what the goal object controlling the
    slot says about itself when it must describe a receiver of media or
    select a codec.

    A goal object at a genuine media endpoint has a real address, a
    priority-ordered codec list, and user-controlled mute flags.  A goal
    object in an application server is masquerading as a media endpoint:
    it can neither send nor receive packets fruitfully, so it mutes media
    flow in both directions (paper section IV-A) — its descriptors are
    [noMedia] and its selectors decline to transmit. *)

open Mediactl_types

type t = {
  owner : string;  (** names this endpoint; descriptor identity scope *)
  addr : Address.t;
  codecs : Codec.t list;  (** receivable codecs, best first *)
  willing : Codec.t list;  (** sendable codecs *)
  mute : Mute.t;
  version : int;  (** bumped by {!modify}; descriptor version *)
}

val endpoint : owner:string -> Address.t -> Codec.t list -> t
(** A genuine media endpoint that can send and receive the given codecs,
    with nothing muted. *)

val endpoint' :
  owner:string -> ?willing:Codec.t list -> ?mute:Mute.t -> Address.t -> Codec.t list -> t
(** Like {!endpoint} with asymmetric send/receive codec sets and initial
    mute flags. *)

val server : owner:string -> t
(** A server-side face: mutes both directions, placeholder address. *)

val is_server : t -> bool

val descriptor : t -> Descriptor.t
(** The descriptor this face currently advertises: [noMedia] when
    [mute.mute_in] is set or the face is a server face, else the codec
    list at the current version. *)

val selector_for : t -> Descriptor.t -> Selector.t
(** The selector answering a received descriptor: [noMedia] when
    [mute.mute_out] is set (or a server face), else the best offered codec
    this face is willing to send. *)

val modify : t -> Mute.t -> t
(** New mute flags; bumps the descriptor version so peers can distinguish
    fresh descriptors from stale ones. *)

val pp : Format.formatter -> t -> unit
