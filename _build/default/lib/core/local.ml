open Mediactl_types

type t = {
  owner : string;
  addr : Address.t;
  codecs : Codec.t list;
  willing : Codec.t list;
  mute : Mute.t;
  version : int;
}

let endpoint' ~owner ?willing ?(mute = Mute.none) addr codecs =
  if owner = "" then invalid_arg "Local.endpoint: empty owner";
  let willing = Option.value willing ~default:codecs in
  { owner; addr; codecs; willing; mute; version = 0 }

let endpoint ~owner addr codecs = endpoint' ~owner addr codecs

let server ~owner =
  {
    owner;
    addr = Address.v "0.0.0.0" 1;
    codecs = [];
    willing = [];
    mute = Mute.both;
    version = 0;
  }

let is_server t = t.codecs = [] && t.willing = []

let descriptor t =
  if t.mute.Mute.mute_in || t.codecs = [] then
    Descriptor.no_media ~owner:t.owner ~version:t.version t.addr
  else Descriptor.make ~owner:t.owner ~version:t.version t.addr t.codecs

let selector_for t desc =
  Selector.answer desc ~sender:t.addr ~willing:t.willing
    ~mute_out:(t.mute.Mute.mute_out || t.willing = [])

let modify t mute = { t with mute; version = t.version + 1 }

let pp ppf t =
  Format.fprintf ppf "%s@%a v%d %a" t.owner Address.pp t.addr t.version Mute.pp t.mute
