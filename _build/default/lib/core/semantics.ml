open Mediactl_types
open Mediactl_protocol

type end_kind = Open_end | Close_end | Hold_end

let pp_end_kind ppf = function
  | Open_end -> Format.pp_print_string ppf "openslot"
  | Close_end -> Format.pp_print_string ppf "closeslot"
  | Hold_end -> Format.pp_print_string ppf "holdslot"

type spec =
  | Eventually_always_closed
  | Eventually_always_not_flowing
  | Always_eventually_flowing
  | Closed_or_flowing

let spec_of a b =
  match a, b with
  | Close_end, (Close_end | Hold_end) | Hold_end, Close_end -> Eventually_always_closed
  | Close_end, Open_end | Open_end, Close_end -> Eventually_always_not_flowing
  | Open_end, (Open_end | Hold_end) | Hold_end, Open_end -> Always_eventually_flowing
  | Hold_end, Hold_end -> Closed_or_flowing

let spec_to_string = function
  | Eventually_always_closed -> "<>[] bothClosed"
  | Eventually_always_not_flowing -> "<>[] !bothFlowing"
  | Always_eventually_flowing -> "[]<> bothFlowing"
  | Closed_or_flowing -> "(<>[] bothClosed) \\/ ([]<> bothFlowing)"

let pp_spec ppf s = Format.pp_print_string ppf (spec_to_string s)

let both_closed ~left ~right = Slot.is_closed left && Slot.is_closed right

(* The selector most recently received at a slot answers the descriptor
   most recently sent by that slot. *)
let fresh_selector slot =
  match slot.Slot.recv_sel, slot.Slot.sent_desc with
  | Some sel, Some desc -> Selector.responds_to_descriptor sel desc
  | (Some _ | None), _ -> false

let opt_equal eq a b =
  match a, b with
  | Some x, Some y -> eq x y
  | (Some _ | None), _ -> false

let both_flowing ~left ~right =
  Slot.is_flowing left && Slot.is_flowing right
  && opt_equal Medium.equal left.Slot.medium right.Slot.medium
  && opt_equal Descriptor.equal left.Slot.remote_desc right.Slot.sent_desc
  && opt_equal Descriptor.equal right.Slot.remote_desc left.Slot.sent_desc
  && fresh_selector left && fresh_selector right

let enabled_agrees ~left_mute ~right_mute ~left ~right =
  let l_enabled = Slot.rx_enabled left in
  let r_enabled = Slot.rx_enabled right in
  Bool.equal l_enabled
    ((not left_mute.Mute.mute_in) && not right_mute.Mute.mute_out)
  && Bool.equal r_enabled
       ((not right_mute.Mute.mute_in) && not left_mute.Mute.mute_out)
