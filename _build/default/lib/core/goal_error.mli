(** Errors raised by goal objects.

    A [Protocol] error wraps an illegal slot transition — these indicate
    implementation bugs and are what the model checker proves unreachable.
    A [Precondition] error reports misuse of a primitive by a box program
    (for example annotating [openSlot(s,m)] on a slot that is not
    closed). *)

type t =
  | Protocol of Mediactl_protocol.Slot.error
  | Precondition of string

val of_slot : Mediactl_protocol.Slot.error -> t
val precondition : string -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
