open Mediactl_types
open Mediactl_core
open Mediactl_runtime

let chan_one = "one"
let chan_two = "two"
let chan_tone = "tone"

let program ~box ~caller_device ~callee_device ~tone_server ~no_answer_timeout =
  let open Program in
  {
    box;
    face = Local.server ~owner:box;
    launch_actions =
      [
        Create_channel { chan = chan_one; toward = caller_device; tunnels = 1 };
        Set_timer { timer = "answer"; after = no_answer_timeout };
      ];
    initial = "oneCall";
    states =
      [
        {
          s_name = "oneCall";
          annotations = [ Ann_open (chan_one, Medium.Audio) ];
          transitions =
            [
              {
                guard = Is_flowing chan_one;
                actions = [ Create_channel { chan = chan_two; toward = callee_device; tunnels = 1 } ];
                target = Some "twoCalls";
              };
              {
                guard = On_timeout "answer";
                actions = [ Destroy_channel chan_one ];
                target = None;
              };
            ];
        };
        {
          s_name = "twoCalls";
          annotations = [ Ann_open (chan_one, Medium.Audio); Ann_open (chan_two, Medium.Audio) ];
          transitions =
            [
              {
                guard = On_meta (chan_two, Meta.Unavailable);
                actions =
                  [
                    Destroy_channel chan_two;
                    Create_channel { chan = chan_tone; toward = tone_server; tunnels = 1 };
                  ];
                target = Some "busyTone";
              };
              {
                guard = On_meta (chan_two, Meta.Available);
                actions = [ Create_channel { chan = chan_tone; toward = tone_server; tunnels = 1 } ];
                target = Some "ringback";
              };
              {
                guard = On_meta (chan_one, Meta.Teardown);
                actions = [ Destroy_channel chan_one; Destroy_channel chan_two ];
                target = None;
              };
            ];
        };
        {
          s_name = "busyTone";
          annotations = [ Ann_link (chan_one, chan_tone) ];
          transitions =
            [
              {
                guard = On_meta (chan_one, Meta.Teardown);
                actions = [ Destroy_channel chan_one; Destroy_channel chan_tone ];
                target = None;
              };
            ];
        };
        {
          s_name = "ringback";
          annotations = [ Ann_link (chan_one, chan_tone); Ann_open (chan_two, Medium.Audio) ];
          transitions =
            [
              {
                guard = Is_flowing chan_two;
                actions = [ Destroy_channel chan_tone ];
                target = Some "connected";
              };
              {
                guard = On_meta (chan_one, Meta.Teardown);
                actions =
                  [
                    Destroy_channel chan_one;
                    Destroy_channel chan_two;
                    Destroy_channel chan_tone;
                  ];
                target = None;
              };
            ];
        };
        {
          s_name = "connected";
          annotations = [ Ann_link (chan_one, chan_two) ];
          transitions =
            [
              {
                guard = On_meta (chan_one, Meta.Teardown);
                actions = [ Destroy_channel chan_one; Destroy_channel chan_two ];
                target = None;
              };
              {
                guard = On_meta (chan_two, Meta.Teardown);
                actions = [ Destroy_channel chan_one; Destroy_channel chan_two ];
                target = None;
              };
            ];
        };
      ];
  }
