(** The Click-to-Dial box program of paper Figure 6.

    A user browsing a Web site clicks a click-to-dial link.  The box
    creates a signaling channel [one] toward the user's own IP telephone
    and tries to open an audio channel ([openSlot]).  Once the user
    answers ([isFlowing]), it creates channel [two] toward the clicked
    address.  If that device is unavailable, it plays a busy tone from a
    tone-generator resource over channel [tone] ([flowLink(one, tone)]);
    if available, it plays ringback the same way while continuing to open
    channel [two]; when the callee answers it drops the tone resource and
    links the two calls ([flowLink(one, two)]). *)

open Mediactl_runtime

val program :
  box:string ->
  caller_device:string ->
  callee_device:string ->
  tone_server:string ->
  no_answer_timeout:float ->
  Program.t
(** The Figure-6 program, parameterized by the device box names. *)

(** Observable program states, for tests: ["oneCall"], ["twoCalls"],
    ["busyTone"], ["ringback"], ["connected"]. *)

val chan_one : string
val chan_two : string
val chan_tone : string
