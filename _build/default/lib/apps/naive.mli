(** The {e erroneous} media control of paper Figure 2: application
    servers that are not coordinated, acting as if media signals concern
    media endpoints only, and therefore forwarding all media signals they
    receive untouched.

    The model is deliberately simple — a command-level reconstruction of
    Figure 2's narrative.  Each endpoint keeps the last {e send-to} and
    {e expect-from} commands it obeyed; a server issues commands to the
    endpoints it serves and blindly forwards commands addressed through
    it.  Replaying the four snapshots exhibits the three anomalies the
    paper describes:

    {ol
    {- after Snapshot 3, V is left without audio input from C (the
       C—V channel has become one-way);}
    {- after Snapshot 4, A is switched from B to C without A's
       permission (the PBX forwarded PC's command blindly);}
    {- after Snapshot 4, B is left transmitting to an endpoint that
       discards the packets.}} *)

type endpoint = { name : string; send_to : string option; expect_from : string option }

type t

val initial : unit -> t
(** A talking to B (after A answered C's prepaid call this becomes
    snapshot 1); endpoints A, B, C, V. *)

val snapshot : t -> int -> t
(** Apply the command sequence of the given Figure-2 snapshot (1-4). *)

val endpoints : t -> endpoint list

val flows : t -> (string * string) list
(** Directed flows that actually deliver media: X sends to Y and Y
    expects media from X. *)

val wasted : t -> (string * string) list
(** Transmissions into the void: X sends to Y but Y does not expect
    media from X (the receiver throws the packets away). *)

val anomalies : t -> string list
(** Human-readable descriptions of the Figure-2 anomalies present in the
    current state. *)
