open Mediactl_types
open Mediactl_core
open Mediactl_runtime

type op = Netsys.t -> Netsys.t * Netsys.send list

let seq ops net =
  List.fold_left
    (fun (net, sends) op ->
      let net, more = op net in
      (net, sends @ more))
    (net, []) ops

let audio = [ Codec.G711; Codec.G726 ]

let local_a = Local.endpoint ~owner:"A" (Address.v "10.0.0.1" 5000) audio
let local_b = Local.endpoint ~owner:"B" (Address.v "10.0.0.2" 5000) audio
let local_c = Local.endpoint ~owner:"C" (Address.v "10.0.0.3" 5000) audio
let local_v = Local.endpoint ~owner:"V" (Address.v "10.0.0.4" 5000) audio

let a_slot = Netsys.slot_ref ~box:"A" ~chan:"a" ()
let b_slot = Netsys.slot_ref ~box:"B" ~chan:"b" ()
let c_slot = Netsys.slot_ref ~box:"C" ~chan:"c" ()
let v_slot = Netsys.slot_ref ~box:"V" ~chan:"v" ()
let pbx_a = Netsys.slot_ref ~box:"PBX" ~chan:"a" ()
let pbx_b = Netsys.slot_ref ~box:"PBX" ~chan:"b" ()
let pbx_pc = Netsys.slot_ref ~box:"PBX" ~chan:"pc" ()
let pc_pbx = Netsys.slot_ref ~box:"PC" ~chan:"pc" ()
let pc_c = Netsys.slot_ref ~box:"PC" ~chan:"c" ()
let pc_v = Netsys.slot_ref ~box:"PC" ~chan:"v" ()

let key (r : Netsys.slot_ref) = r.Netsys.key

let build () =
  let net = Netsys.empty in
  let net = List.fold_left Netsys.add_box net [ "A"; "B"; "C"; "V"; "PBX"; "PC" ] in
  let net = Netsys.connect net ~chan:"a" ~initiator:"A" ~acceptor:"PBX" () in
  let net = Netsys.connect net ~chan:"b" ~initiator:"PBX" ~acceptor:"B" () in
  let net = Netsys.connect net ~chan:"pc" ~initiator:"PC" ~acceptor:"PBX" () in
  let net = Netsys.connect net ~chan:"c" ~initiator:"C" ~acceptor:"PC" () in
  let net = Netsys.connect net ~chan:"v" ~initiator:"PC" ~acceptor:"V" () in
  (* Endpoint goals that never change during the scenario. *)
  let net, _ = Netsys.bind_hold net b_slot local_b in
  let net, _ = Netsys.bind_hold net v_slot local_v in
  (* The original A—B call. *)
  let net, _ = Netsys.bind_link net ~box:"PBX" ~id:"pbx" (key pbx_a) (key pbx_b) in
  let net, _ = Netsys.bind_open net a_slot local_a Medium.Audio in
  (* PC is ready to route C toward A and has its IVR resource idle. *)
  let net, _ = Netsys.bind_link net ~box:"PC" ~id:"pc" (key pc_c) (key pc_pbx) in
  let net, _ = Netsys.bind_hold net pc_v (Local.server ~owner:"PC.v") in
  (* A answers through its own endpoint; A's side of the PBX slot pc is
     unbound until snapshot 1 relinks, but signals can arrive there
     earlier (C dialling), so park it under a holdslot meanwhile. *)
  let net, _ = Netsys.bind_hold net pbx_pc (Local.server ~owner:"PBX.pc") in
  net

let snapshot1 =
  seq
    [
      (fun net -> Netsys.bind_open net c_slot local_c Medium.Audio);
      (fun net -> Netsys.bind_link net ~box:"PBX" ~id:"pbx" (key pbx_a) (key pbx_pc));
      (fun net -> Netsys.bind_hold net pbx_b (Local.server ~owner:"PBX.b"));
    ]

let snapshot2 =
  seq
    [
      (fun net -> Netsys.bind_link net ~box:"PC" ~id:"pc" (key pc_c) (key pc_v));
      (fun net -> Netsys.bind_hold net pc_pbx (Local.server ~owner:"PC.pbx"));
    ]

let snapshot3 =
  seq
    [
      (fun net -> Netsys.bind_link net ~box:"PBX" ~id:"pbx" (key pbx_a) (key pbx_b));
      (fun net -> Netsys.bind_hold net pbx_pc (Local.server ~owner:"PBX.pc"));
    ]

let snapshot4_pc =
  seq
    [
      (fun net -> Netsys.bind_link net ~box:"PC" ~id:"pc" (key pc_c) (key pc_pbx));
      (fun net -> Netsys.bind_hold net pc_v (Local.server ~owner:"PC.v"));
    ]

let snapshot4_pbx =
  seq
    [
      (fun net -> Netsys.bind_link net ~box:"PBX" ~id:"pbx" (key pbx_a) (key pbx_pc));
      (fun net -> Netsys.bind_hold net pbx_b (Local.server ~owner:"PBX.b"));
    ]

let expected_flows = function
  | 0 -> [ ("A", "B"); ("B", "A") ]
  | 1 -> [ ("A", "C"); ("C", "A") ]
  | 2 -> [ ("C", "V"); ("V", "C") ]
  | 3 -> [ ("A", "B"); ("B", "A"); ("C", "V"); ("V", "C") ]
  | 4 -> [ ("A", "C"); ("C", "A") ]
  | n -> invalid_arg (Printf.sprintf "Prepaid.expected_flows: no snapshot %d" n)

let flows net = Mediactl_media.Flow.edges (Paths.flows net)
