open Mediactl_types
open Mediactl_core
open Mediactl_runtime

let tunnel_roles =
  [
    (0, "video for TV A (high quality)");
    (1, "English audio for TV A");
    (2, "video for laptop C (low quality)");
    (3, "English audio for laptop C");
    (4, "French audio for headphones B");
  ]

(* The movie server is the source of every stream: it opens all the
   media channels.  Receiving devices accept with their own codec
   capabilities: the TV decodes high-quality video, the laptop only
   low-quality. *)
let movie_local tun =
  let codecs =
    match tun with
    | 0 | 2 -> [ Codec.H264; Codec.H263; Codec.H261 ]
    | _ -> [ Codec.G711; Codec.G726 ]
  in
  (* A movie source only sends: inward media stays muted. *)
  Local.endpoint' ~mute:Mute.in_only
    ~owner:(Printf.sprintf "movie.%d" tun)
    (Address.v "10.1.0.1" (7000 + tun))
    codecs

let tv_video = Local.endpoint ~owner:"tvA.video" (Address.v "10.1.0.2" 7100) [ Codec.H264; Codec.H263 ]
let tv_audio = Local.endpoint ~owner:"tvA.audio" (Address.v "10.1.0.2" 7102) [ Codec.G711 ]
let lap_video = Local.endpoint ~owner:"lapC.video" (Address.v "10.1.0.3" 7200) [ Codec.H261 ]
let lap_audio = Local.endpoint ~owner:"lapC.audio" (Address.v "10.1.0.3" 7202) [ Codec.G726 ]
let head_audio = Local.endpoint ~owner:"headB" (Address.v "10.1.0.4" 7300) [ Codec.G711 ]

let sref box chan tun = Netsys.slot_ref ~box ~chan ~tun ()
let skey chan tun = { Netsys.chan; tun }

let medium_of_tun tun = if tun = 0 || tun = 2 then Medium.Video else Medium.Audio

let build () =
  let net =
    List.fold_left Netsys.add_box Netsys.empty [ "movie"; "cbA"; "cbC"; "tvA"; "headB"; "lapC" ]
  in
  let net = Netsys.connect net ~chan:"mv" ~tunnels:5 ~initiator:"movie" ~acceptor:"cbA" () in
  let net = Netsys.connect net ~chan:"cc" ~tunnels:2 ~initiator:"cbA" ~acceptor:"cbC" () in
  let net = Netsys.connect net ~chan:"tv" ~tunnels:2 ~initiator:"cbA" ~acceptor:"tvA" () in
  let net = Netsys.connect net ~chan:"hp" ~tunnels:1 ~initiator:"cbA" ~acceptor:"headB" () in
  let net = Netsys.connect net ~chan:"lp" ~tunnels:2 ~initiator:"cbC" ~acceptor:"lapC" () in
  (* Devices answer. *)
  let net, _ = Netsys.bind_hold net (sref "tvA" "tv" 0) tv_video in
  let net, _ = Netsys.bind_hold net (sref "tvA" "tv" 1) tv_audio in
  let net, _ = Netsys.bind_hold net (sref "lapC" "lp" 0) lap_video in
  let net, _ = Netsys.bind_hold net (sref "lapC" "lp" 1) lap_audio in
  let net, _ = Netsys.bind_hold net (sref "headB" "hp" 0) head_audio in
  (* Control boxes splice the paths. *)
  let net, _ = Netsys.bind_link net ~box:"cbA" ~id:"a-video" (skey "mv" 0) (skey "tv" 0) in
  let net, _ = Netsys.bind_link net ~box:"cbA" ~id:"a-audio" (skey "mv" 1) (skey "tv" 1) in
  let net, _ = Netsys.bind_link net ~box:"cbA" ~id:"c-video" (skey "mv" 2) (skey "cc" 0) in
  let net, _ = Netsys.bind_link net ~box:"cbA" ~id:"c-audio" (skey "mv" 3) (skey "cc" 1) in
  let net, _ = Netsys.bind_link net ~box:"cbA" ~id:"b-audio" (skey "mv" 4) (skey "hp" 0) in
  let net, _ = Netsys.bind_link net ~box:"cbC" ~id:"c-video" (skey "cc" 0) (skey "lp" 0) in
  let net, _ = Netsys.bind_link net ~box:"cbC" ~id:"c-audio" (skey "cc" 1) (skey "lp" 1) in
  (* The movie server starts all five streams. *)
  List.fold_left
    (fun net tun ->
      fst (Netsys.bind_open net (sref "movie" "mv" tun) (movie_local tun) (medium_of_tun tun)))
    net [ 0; 1; 2; 3; 4 ]

let modify_all_movie_slots mute net =
  List.fold_left
    (fun (net, sends) (key, _) ->
      let net, more = Netsys.modify net { Netsys.box = "movie"; key } mute in
      (net, sends @ more))
    (net, []) (Netsys.slots_of_box net "movie")

(* Pausing stops the sending direction at the source; the channels stay
   up so play resumes instantly. *)
let pause net = modify_all_movie_slots Mute.both net
let play net = modify_all_movie_slots Mute.in_only net

let daughter_leaves net =
  let net = Netsys.disconnect net ~chan:"cc" in
  (* The daughter's two tunnels on the shared movie channel are no
     longer used: both ends close them. *)
  let net, s0 =
    List.fold_left
      (fun (net, sends) (box, tun) ->
        let net, more = Netsys.bind_close net (sref box "mv" tun) in
        (net, sends @ more))
      (net, [])
      [ ("cbA", 2); ("cbA", 3); ("movie", 2); ("movie", 3) ]
  in
  ignore s0;
  let net = Netsys.connect net ~chan:"mv2" ~tunnels:2 ~initiator:"cbC" ~acceptor:"movie" () in
  let net, s1 = Netsys.bind_link net ~box:"cbC" ~id:"c-video" (skey "mv2" 0) (skey "lp" 0) in
  let net, s2 = Netsys.bind_link net ~box:"cbC" ~id:"c-audio" (skey "mv2" 1) (skey "lp" 1) in
  (* The movie server opens the daughter's new streams at her own time
     pointer. *)
  let net, s3 =
    Netsys.bind_open net (sref "movie" "mv2" 0)
      (Local.endpoint' ~mute:Mute.in_only ~owner:"movie2.0" (Address.v "10.1.0.1" 7010)
         [ Codec.H264; Codec.H261 ])
      Medium.Video
  in
  let net, s4 =
    Netsys.bind_open net (sref "movie" "mv2" 1)
      (Local.endpoint' ~mute:Mute.in_only ~owner:"movie2.1" (Address.v "10.1.0.1" 7011)
         [ Codec.G711; Codec.G726 ])
      Medium.Audio
  in
  (net, s1 @ s2 @ s3 @ s4)

let flows net = Mediactl_media.Flow.edges (Paths.flows net)

let expected_flows_together =
  [ ("movie", "tvA"); ("movie", "lapC"); ("movie", "headB") ]

let expected_flows_apart = expected_flows_together
