(** The paper's running example (Figures 2, 3, and 13): telephones A and
    B behind an IP PBX, a prepaid-card server PC serving caller C, and an
    audio-signaling resource V providing PC's user interface.

    The network:

    {v
      A --a-- PBX --pc-- PC --c-- C
               |          |
               b          v
               |          |
               B          V
    v}

    Each transition function applies the goal-object rebindings one box
    program performs when it changes state; composing them replays the
    four snapshots of Figure 3.  The same operations driven concurrently
    under the timed executor reproduce the Figure-13 convergence scenario
    whose latency the paper computes as [2n + 3c]. *)

open Mediactl_core
open Mediactl_runtime

(** An operation a box program performs: rebind goals, possibly emitting
    signals. *)
type op = Netsys.t -> Netsys.t * Netsys.send list

val seq : op list -> op
(** Perform several rebindings atomically (one program transition). *)

val local_a : Local.t
val local_b : Local.t
val local_c : Local.t
val local_v : Local.t

(** Slot references used by the scenario: [a_slot] is A's slot on
    channel [a], [c_slot] is C's on channel [c], and the [pbx_*]/[pc_*]
    references name the server-side slots per adjacent channel. *)

val a_slot : Netsys.slot_ref
val c_slot : Netsys.slot_ref
val pbx_a : Netsys.slot_ref
val pbx_b : Netsys.slot_ref
val pbx_pc : Netsys.slot_ref
val pc_pbx : Netsys.slot_ref
val pc_c : Netsys.slot_ref
val pc_v : Netsys.slot_ref

val build : unit -> Netsys.t
(** Topology plus the original A—B call bindings (A openslot, PBX
    flowlink a–b, B holdslot) and the permanent endpoint goals of C's
    side (V holdslot, PC flowlink c–pc and holdslot v); C has not yet
    dialled.  Run to quiescence to reach the "A talking to B" state. *)

val snapshot1 : op
(** C dials A via the prepaid server; A switches to C: C opens; the PBX
    relinks a–pc and holds b. *)

val snapshot2 : op
(** The prepaid funds run out: PC relinks c–v and holds its PBX side. *)

val snapshot3 : op
(** A switches back to B: the PBX relinks a–b and holds its PC side. *)

val snapshot4_pc : op
(** V verified payment: PC relinks c–pc and holds v. *)

val snapshot4_pbx : op
(** The PBX switches A back toward C: relinks a–pc and holds b. *)

val expected_flows : int -> (string * string) list
(** The directed media flows Figure 3 shows after each snapshot (1-4);
    snapshot 0 is the initial A—B call. *)

val flows : Netsys.t -> (string * string) list
(** The directed flows currently enabled, as sorted box-name pairs. *)
