open Mediactl_types
open Mediactl_core
open Mediactl_runtime

let audio = [ Codec.G711; Codec.G726 ]

let local_l = Local.endpoint ~owner:"L" (Address.v "10.2.0.1" 5000) audio
let local_r = Local.endpoint ~owner:"R" (Address.v "10.2.0.2" 5000) audio

let box_name i = Printf.sprintf "B%d" i

(* Channel i connects node i to node i+1, where node 0 = L and node
   boxes+1 = R. *)
let chan_name i = Printf.sprintf "ch%d" i

let node_name ~boxes i = if i = 0 then "L" else if i = boxes + 1 then "R" else box_name i

let build ~boxes ~j =
  if boxes < 1 || j < 1 || j > boxes then invalid_arg "Relink.build: need 1 <= j <= boxes";
  let net =
    List.fold_left Netsys.add_box Netsys.empty
      ("L" :: "R" :: List.init boxes (fun i -> box_name (i + 1)))
  in
  let net =
    List.fold_left
      (fun net i ->
        Netsys.connect net ~chan:(chan_name i) ~initiator:(node_name ~boxes i)
          ~acceptor:(node_name ~boxes (i + 1)) ())
      net
      (List.init (boxes + 1) Fun.id)
  in
  (* Interior boxes: flowlinks everywhere except at Bj, which holds both
     sides so that each half of the path terminates there. *)
  let net =
    List.fold_left
      (fun net i ->
        let left_key = { Netsys.chan = chan_name (i - 1); tun = 0 } in
        let right_key = { Netsys.chan = chan_name i; tun = 0 } in
        if i = j then
          let hold key =
            fun net ->
              Netsys.bind_hold net
                { Netsys.box = box_name i; key }
                (Local.server ~owner:(Printf.sprintf "B%d.%s" i key.Netsys.chan))
          in
          let net, _ = hold left_key net in
          fst (hold right_key net)
        else fst (Netsys.bind_link net ~box:(box_name i) ~id:"fl" left_key right_key))
      net
      (List.init boxes (fun i -> i + 1))
  in
  (* Both endpoints push toward flowing, so both halves are live. *)
  let net, _ =
    Netsys.bind_open net (Netsys.slot_ref ~box:"L" ~chan:(chan_name 0) ()) local_l Medium.Audio
  in
  let net, _ =
    Netsys.bind_open net
      (Netsys.slot_ref ~box:"R" ~chan:(chan_name boxes) ())
      local_r Medium.Audio
  in
  net

let relink ~j net =
  Netsys.bind_link net ~box:(box_name j) ~id:"fl"
    { Netsys.chan = chan_name (j - 1); tun = 0 }
    { Netsys.chan = chan_name j; tun = 0 }

let transmits_toward slot_ref owner net =
  match Netsys.slot net slot_ref with
  | Some slot -> (
    Mediactl_protocol.Slot.tx_enabled slot
    &&
    match slot.Mediactl_protocol.Slot.remote_desc with
    | Some d -> fst (Descriptor.id d) = owner
    | None -> false)
  | None -> false

let left_transmits net =
  transmits_toward (Netsys.slot_ref ~box:"L" ~chan:(chan_name 0) ()) "R" net

let right_transmits net =
  let last =
    (* R sits on the highest-numbered channel. *)
    List.fold_left
      (fun best chan -> if String.length chan >= String.length best && chan > best then chan else best)
      "ch0" (Netsys.channels net)
  in
  transmits_toward (Netsys.slot_ref ~box:"R" ~chan:last ()) "L" net

let hops ~boxes ~j = max j (boxes + 1 - j)

let formula ~p ~n ~c = (float_of_int p *. n) +. (float_of_int (p + 1) *. c)
