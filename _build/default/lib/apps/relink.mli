(** A parametric relinking laboratory for the latency analysis of paper
    section VIII-C.

    The latency of providing media flow from a signaling path is measured
    from the moment the {e last} flowlink in the path is initialized; the
    paper derives the average signaling delay

    {v p·n + (p+1)·c v}

    where [p] is the number of hops between the last flowlink and its
    farther endpoint.

    [build ~boxes ~j] makes a path [L — B1 — … — Bk — R] in which every
    interior box except [Bj] has a flowlink and [Bj] holds its two slots;
    both halves are live (L and R are openslots, so each half flows up to
    [Bj]).  Applying {!relink} at [Bj] completes the path; the farther
    endpoint is [max j (k + 1 - j)] hops away. *)

open Mediactl_runtime

val build : boxes:int -> j:int -> Netsys.t
(** Requires [1 <= j <= boxes].  Run to quiescence before relinking. *)

val relink : j:int -> Netsys.t -> Netsys.t * Netsys.send list
(** Box [Bj] replaces its two holdslots by a flowlink. *)

val left_transmits : Netsys.t -> bool
(** The left endpoint can transmit toward the right endpoint (its
    current peer descriptor is owned by R). *)

val right_transmits : Netsys.t -> bool

val hops : boxes:int -> j:int -> int
(** [p]: hops between Bj and its farther endpoint. *)

val formula : p:int -> n:float -> c:float -> float
(** [p·n + (p+1)·c]. *)
