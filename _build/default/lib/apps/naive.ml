type endpoint = { name : string; send_to : string option; expect_from : string option }

type t = { eps : endpoint list }

let set t name f =
  { eps = List.map (fun e -> if e.name = name then f e else e) t.eps }

(* The commands of the protocol-independent narrative: "send media to X",
   "expect media from X", "stop sending".  Uncoordinated servers forward
   them untouched, so they land directly on the endpoints. *)
let send_to t name target = set t name (fun e -> { e with send_to = Some target })
let expect_from t name source = set t name (fun e -> { e with expect_from = Some source })
let stop_sending t name = set t name (fun e -> { e with send_to = None })

let initial () =
  {
    eps =
      [
        (* Snapshot 1: A talking to C; B on hold (A stopped sending to
           B, but B was never told anything new — it still sends toward
           A, which at this point still expects A's own switch). *)
        { name = "A"; send_to = Some "C"; expect_from = Some "C" };
        { name = "B"; send_to = Some "A"; expect_from = None };
        { name = "C"; send_to = Some "A"; expect_from = Some "A" };
        { name = "V"; send_to = None; expect_from = None };
      ];
  }

let snapshot t = function
  | 1 -> t
  | 2 ->
    (* Funds exhausted: PC tells A to stop sending, tells C to send to
       V, and V to send to C.  The do-not-send to A passes through the
       PBX, which forwards it blindly. *)
    let t = stop_sending t "A" in
    let t = send_to t "C" "V" in
    let t = expect_from t "C" "V" in
    let t = send_to t "V" "C" in
    let t = expect_from t "V" "C" in
    t
  | 3 ->
    (* A switches back to B: the PBX tells A to send to B, B to send to
       A, and C to stop sending.  That last command passes through PC,
       which forwards it untouched to C — leaving V without input. *)
    let t = send_to t "A" "B" in
    let t = expect_from t "A" "B" in
    let t = send_to t "B" "A" in
    let t = expect_from t "B" "A" in
    let t = stop_sending t "C" in
    t
  | 4 ->
    (* V verified the funds: PC tells A to send to C, C to send to A,
       and V to stop sending.  The command to A is forwarded blindly by
       the PBX: A is switched without its permission, and B keeps
       transmitting to an endpoint that now discards its packets. *)
    let t = send_to t "A" "C" in
    let t = expect_from t "A" "C" in
    let t = send_to t "C" "A" in
    let t = expect_from t "C" "A" in
    let t = stop_sending t "V" in
    t
  | n -> invalid_arg (Printf.sprintf "Naive.snapshot: no snapshot %d" n)

let endpoints t = t.eps

let find t name = List.find (fun e -> e.name = name) t.eps

let flows t =
  List.filter_map
    (fun e ->
      match e.send_to with
      | Some target when (find t target).expect_from = Some e.name -> Some (e.name, target)
      | Some _ | None -> None)
    t.eps
  |> List.sort_uniq compare

let wasted t =
  List.filter_map
    (fun e ->
      match e.send_to with
      | Some target when (find t target).expect_from <> Some e.name -> Some (e.name, target)
      | Some _ | None -> None)
    t.eps
  |> List.sort_uniq compare

let anomalies t =
  let fl = flows t in
  let ws = wasted t in
  let one_way_cv =
    (List.mem ("V", "C") fl && not (List.mem ("C", "V") fl))
    || (List.mem ("C", "V") fl && not (List.mem ("V", "C") fl))
  in
  List.concat
    [
      (if one_way_cv then [ "the C-V channel is one-way: V lost its audio input" ] else []);
      (if (find t "A").expect_from = Some "C" && List.mem ("B", "A") ws then
         [ "A was switched to C without its permission while B still transmits to it" ]
       else []);
      List.map (fun (x, y) -> Printf.sprintf "%s transmits to %s, which discards the packets" x y) ws;
    ]
