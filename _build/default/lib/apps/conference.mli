(** Audio conferencing (paper Figure 7).

    A conference server (an application server) flowlinks the tunnel from
    each user device to a tunnel leading to a conference bridge (a media
    resource performing audio mixing).  Toward the bridge each audio
    channel carries one user's voice; away from the bridge it carries the
    mix of all the other users.

    Full muting of a user is done with the signaling primitives: the
    server temporarily replaces the user's flowlink by two holdslots.
    Partial muting cannot be expressed by the four primitives; it is
    achieved in the bridge, which the server instructs through
    standardized meta-signals — represented here as mixing matrices. *)

open Mediactl_core
open Mediactl_runtime

(** Partial-muting policies from the paper's examples. *)
type policy =
  | Open_floor  (** everyone hears everyone else *)
  | Business of string list
      (** inputs of the listed (non-speaking) participants are dropped *)
  | Emergency of { calltaker : string; caller : string; responder : string }
      (** the caller is heard but hears only the calltaker *)
  | Whisper of { trainee : string; customer : string; coach : string }
      (** the coach is heard only by the trainee, at a whisper *)

val mixing_matrix : policy -> participants:string list -> (string * (string * float) list) list
(** [(listener, [(speaker, gain); ...])] rows: which inputs the bridge
    mixes into the stream toward each listener, with what gain. *)

val build : users:(string * Local.t) list -> Netsys.t
(** Boxes [conf] and [bridge] plus one box per user; for user [u],
    channel [u-conf] links to channel [conf-bridge-u] inside the server.
    Running the result to quiescence establishes every leg. *)

val full_mute : user:string -> Netsys.t -> Netsys.t * Netsys.send list
(** Replace the user's flowlink by two holdslots (paper: full muting). *)

val unmute : user:string -> Netsys.t -> Netsys.t * Netsys.send list
(** Restore the flowlink. *)

val user_chan : string -> string
val bridge_chan : string -> string
val flows : Netsys.t -> (string * string) list
