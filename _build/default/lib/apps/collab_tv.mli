(** Collaborative television (paper Figure 8).

    A family-room television A and a daughter's laptop C share a movie:
    both see the same movie at the same time point.  The collaborative
    control box for A holds a signaling channel to the movie server with
    five active tunnels — video and English audio for each of the two
    video devices (which use different codecs and qualities), plus a
    French audio channel for a friend's headphones B.  Signaling paths
    from all three devices go through A's control box, so pause/play
    commands mediated by it affect all five media channels.

    When the daughter leaves the collaboration, C's control box gets its
    own signaling channel to the movie server (same movie, different time
    pointer); the channel between the two control boxes disappears. *)

open Mediactl_runtime

val tunnel_roles : (int * string) list
(** What each of the five tunnels of the movie channel carries. *)

val build : unit -> Netsys.t
(** Boxes: [movie], [cbA], [cbC], [tvA], [headB], [lapC]; channel [mv]
    (movie—cbA, 5 tunnels), [cc] (cbA—cbC, 2 tunnels), [tv] (cbA—tvA, 2
    tunnels), [hp] (cbA—headB, 1 tunnel), [lp] (cbC—lapC, 2 tunnels).
    Run to quiescence to start all five streams. *)

val pause : Netsys.t -> Netsys.t * Netsys.send list
(** The movie server stops sending on all five channels (mute out),
    mediated by cbA's control of the movie channel. *)

val play : Netsys.t -> Netsys.t * Netsys.send list

val daughter_leaves : Netsys.t -> Netsys.t * Netsys.send list
(** Tear down the cbA—cbC collaboration channel and give cbC its own
    channel [mv2] to the movie server with a different time pointer. *)

val flows : Netsys.t -> (string * string) list

val expected_flows_together : (string * string) list
(** Who streams to whom while the collaboration is active. *)

val expected_flows_apart : (string * string) list
