lib/apps/collab_tv.ml: Address Codec List Local Mediactl_core Mediactl_media Mediactl_runtime Mediactl_types Medium Mute Netsys Paths Printf
