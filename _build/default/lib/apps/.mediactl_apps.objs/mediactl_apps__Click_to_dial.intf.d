lib/apps/click_to_dial.mli: Mediactl_runtime Program
