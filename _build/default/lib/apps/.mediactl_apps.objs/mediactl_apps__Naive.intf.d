lib/apps/naive.mli:
