lib/apps/naive.ml: List Printf
