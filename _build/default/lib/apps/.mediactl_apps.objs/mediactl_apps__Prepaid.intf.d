lib/apps/prepaid.mli: Local Mediactl_core Mediactl_runtime Netsys
