lib/apps/click_to_dial.ml: Local Mediactl_core Mediactl_runtime Mediactl_types Medium Meta Program
