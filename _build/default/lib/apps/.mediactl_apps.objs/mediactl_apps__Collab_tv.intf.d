lib/apps/collab_tv.mli: Mediactl_runtime Netsys
