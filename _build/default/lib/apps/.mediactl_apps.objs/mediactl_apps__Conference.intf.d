lib/apps/conference.mli: Local Mediactl_core Mediactl_runtime Netsys
