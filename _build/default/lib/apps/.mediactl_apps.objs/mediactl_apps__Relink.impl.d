lib/apps/relink.ml: Address Codec Descriptor Fun List Local Mediactl_core Mediactl_protocol Mediactl_runtime Mediactl_types Medium Netsys Printf String
