lib/apps/conference.ml: Address Codec List Local Mediactl_core Mediactl_media Mediactl_runtime Mediactl_types Medium Netsys Paths
