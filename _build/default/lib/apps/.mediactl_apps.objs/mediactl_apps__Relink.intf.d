lib/apps/relink.mli: Mediactl_runtime Netsys
