(** The SIP-style message vocabulary needed for third-party call control
    (paper section IX-B, RFC 3725 flows).

    An invite transaction is three signals: [Invite] (possibly carrying
    an offer, or empty to solicit a fresh offer), a [Success] response
    (carrying the answer — or an offer, when the invite solicited one),
    and an [Ack] (empty — or carrying the answer when the success carried
    an offer).  Crossing invite transactions on the same signaling path
    fail with [Glare] (SIP 491 Request Pending); the initiators retry
    after randomly chosen delays. *)

type body = Offer of Sdp.t | Answer of Sdp.t

type t =
  | Invite of { txn : int; body : body option }
  | Success of { txn : int; body : body option }
  | Glare of { txn : int }  (** 491 Request Pending *)
  | Ack of { txn : int; body : body option }

val txn : t -> int
val name : t -> string
val pp : Format.formatter -> t -> unit
