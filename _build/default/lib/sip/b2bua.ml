open Mediactl_sim

type phase =
  | Idle
  | Soliciting of { outer_txn : int }
  | Inner_invite of { inner_txn : int; outer_txn : int; offer : Sdp.t }
  | Awaiting_retry
  | Complete

type t = {
  fabric : Fabric.t;
  name : string;
  outer : string;
  inner : string;
  retry_lo : float;
  retry_hi : float;
  mutable phase : phase;
  mutable fwd : (int * int) option;  (* peer server's txn, our outer txn *)
  mutable last_offer : Sdp.t option;  (* the outer party's description *)
  mutable last_answer : Sdp.t option;  (* the inner party's description *)
  mutable hold_txns : (int * string) list;  (* hold re-INVITEs awaiting 200 *)
  mutable version : int;
  mutable glares : int;
  mutable attempts : int;
  mutable done_at : float option;
}

let done_at t = t.done_at
let glares t = t.glares
let attempts t = t.attempts

let send t ~to_ msg = Fabric.send t.fabric ~from_:t.name ~to_ msg

let start t =
  t.attempts <- t.attempts + 1;
  let outer_txn = Fabric.fresh_txn t.fabric in
  t.phase <- Soliciting { outer_txn };
  (* An INVITE with no offer solicits a fresh offer: SIP offers are not
     supposed to be re-used, so the server cannot satisfy itself from a
     cache the way a flowlink re-sends a cached descriptor. *)
  send t ~to_:t.outer (Sip_msg.Invite { txn = outer_txn; body = None })

let relink t = start t

(* A dummy answer closing an outer transaction after a glare: accept the
   offer formally, pointing media at the server itself. *)
let dummy_answer t offer =
  match
    Sdp.answer offer ~owner:t.name
      ~addr:(Mediactl_types.Address.v "0.0.0.0" 9)
      ~willing:(List.concat_map (fun l -> l.Sdp.codecs) offer.Sdp.lines)
  with
  | Some a -> a
  | None -> Sdp.offer ~owner:t.name ~session_version:0 offer.Sdp.lines

let schedule_retry t =
  t.phase <- Awaiting_retry;
  let delay = Rng.uniform (Fabric.rng t.fabric) ~lo:t.retry_lo ~hi:t.retry_hi in
  Fabric.after t.fabric delay (fun () ->
      match t.phase with
      | Awaiting_retry -> start t
      | Idle | Soliciting _ | Inner_invite _ | Complete -> ())

let handle t ~from msg =
  match msg, t.phase with
  (* --- our own operation ------------------------------------------- *)
  | Sip_msg.Success { txn; body = Some (Sip_msg.Offer offer) }, Soliciting { outer_txn }
    when from = t.outer && txn = outer_txn ->
    let inner_txn = Fabric.fresh_txn t.fabric in
    t.phase <- Inner_invite { inner_txn; outer_txn; offer };
    send t ~to_:t.inner (Sip_msg.Invite { txn = inner_txn; body = Some (Sip_msg.Offer offer) })
  | Sip_msg.Success { txn; body = Some (Sip_msg.Answer answer) }, Inner_invite i
    when from = t.inner && txn = i.inner_txn ->
    (* The far side answered our endpoint's offer: complete both
       transactions, delivering the answer to the offerer in the ACK. *)
    send t ~to_:t.inner (Sip_msg.Ack { txn = i.inner_txn; body = None });
    send t ~to_:t.outer
      (Sip_msg.Ack { txn = i.outer_txn; body = Some (Sip_msg.Answer answer) });
    t.last_offer <- Some i.offer;
    t.last_answer <- Some answer;
    t.phase <- Complete;
    t.done_at <- Some (Fabric.now t.fabric)
  | Sip_msg.Glare { txn }, Inner_invite i when from = t.inner && txn = i.inner_txn ->
    (* Our inner INVITE crossed the other server's: both fail.  Close
       the outer transaction with a dummy answer and retry after a
       random delay. *)
    t.glares <- t.glares + 1;
    send t ~to_:t.outer
      (Sip_msg.Ack { txn = i.outer_txn; body = Some (Sip_msg.Answer (dummy_answer t i.offer)) });
    schedule_retry t
  (* --- the other server's operation passing through us -------------- *)
  | Sip_msg.Invite { txn; body = Some (Sip_msg.Offer _) }, Inner_invite _ when from = t.inner ->
    (* Glare on our side too. *)
    send t ~to_:t.inner (Sip_msg.Glare { txn })
  | Sip_msg.Invite { txn; body }, (Idle | Awaiting_retry | Complete | Soliciting _)
    when from = t.inner ->
    let outer_txn = Fabric.fresh_txn t.fabric in
    t.fwd <- Some (txn, outer_txn);
    send t ~to_:t.outer (Sip_msg.Invite { txn = outer_txn; body })
  | Sip_msg.Success { txn; body }, _ when from = t.outer && (match t.fwd with Some (_, o) -> o = txn | None -> false) -> (
    match t.fwd with
    | Some (inner_txn, _) -> send t ~to_:t.inner (Sip_msg.Success { txn = inner_txn; body })
    | None -> ())
  | Sip_msg.Ack { txn; body }, _ when from = t.inner && (match t.fwd with Some (i, _) -> i = txn | None -> false) -> (
    match t.fwd with
    | Some (_, outer_txn) ->
      t.fwd <- None;
      send t ~to_:t.outer (Sip_msg.Ack { txn = outer_txn; body })
    | None -> ())
  (* --- hold re-INVITEs ----------------------------------------------- *)
  | Sip_msg.Success { txn; _ }, _ when List.mem_assoc txn t.hold_txns ->
    let to_ = List.assoc txn t.hold_txns in
    t.hold_txns <- List.remove_assoc txn t.hold_txns;
    send t ~to_ (Sip_msg.Ack { txn; body = None })
  (* --- anything else is stale or uninteresting ---------------------- *)
  | (Sip_msg.Invite _ | Sip_msg.Success _ | Sip_msg.Glare _ | Sip_msg.Ack _), _ -> ()

let hold t =
  (* Each side gets its own session description back, marked inactive:
     one independent transaction per side (they ride different signaling
     channels, so they proceed concurrently). *)
  let one to_ cached =
    match cached with
    | None -> ()
    | Some sdp ->
      t.version <- t.version + 1;
      let txn = Fabric.fresh_txn t.fabric in
      t.hold_txns <- (txn, to_) :: t.hold_txns;
      send t ~to_
        (Sip_msg.Invite
           {
             txn;
             body =
               Some (Sip_msg.Offer (Sdp.inactive sdp ~owner:t.name ~session_version:t.version));
           })
  in
  one t.outer t.last_answer;
  one t.inner t.last_offer

let resume = relink

let create fabric ~name ~outer ~inner ~retry_lo ~retry_hi =
  let t =
    {
      fabric;
      name;
      outer;
      inner;
      retry_lo;
      retry_hi;
      phase = Idle;
      fwd = None;
      last_offer = None;
      last_answer = None;
      hold_txns = [];
      version = 0;
      glares = 0;
      attempts = 0;
      done_at = None;
    }
  in
  Fabric.register fabric name (handle t);
  t

let relay fabric ~name ~a ~b =
  Fabric.register fabric name (fun ~from msg ->
      if from = a then Fabric.send fabric ~from_:name ~to_:b msg
      else if from = b then Fabric.send fabric ~from_:name ~to_:a msg)
