(** A back-to-back user agent performing third-party call control (RFC
    3725 flow: solicit a fresh offer with an offerless INVITE, forward the
    offer in an INVITE on the other side, return the answer in the ACK).

    This is the SIP counterpart of instantiating a flowlink (paper
    section IX-B, Figure 14).  When two such servers on the same
    signaling path operate concurrently, their inner INVITEs cross; both
    transactions fail with 491, both servers finish their outer
    transactions with dummy answers, and each retries after a random
    delay. *)

type t

val create :
  Fabric.t ->
  name:string ->
  outer:string ->
  inner:string ->
  retry_lo:float ->
  retry_hi:float ->
  t

val relink : t -> unit
(** Begin the third-party call-control operation: media should flow
    between the outer endpoint and whatever lies beyond the inner side. *)

val hold : t -> unit
(** Put both parties on hold: re-INVITE each side with its cached session
    description marked inactive (the SIP counterpart of replacing a
    flowlink by two holdslots).  Requires a completed {!relink}. *)

val resume : t -> unit
(** Take the parties off hold by re-running the third-party call control
    (SIP offers cannot be cached, so resuming solicits afresh). *)

val done_at : t -> float option
(** When this server's own operation completed. *)

val glares : t -> int
val attempts : t -> int

val relay : Fabric.t -> name:string -> a:string -> b:string -> unit
(** Install a transparent proxy node forwarding everything between [a]
    and [b] (for the paper's common-case comparison, where only one
    server manipulates media). *)
