(** Session descriptions for the SIP-style baseline (paper section IX-B).

    SIP bundles media: every signal controlling media refers to all media
    channels of the session at once, as a list of media lines.  Codec
    choice is by {e negotiation}: an offer carries the codec sets the
    offerer can handle; the answer is, per line, a subset all of whose
    codecs the answerer can also handle.  An answer is {e relative} to
    its offer, so (unlike the unilateral descriptors of the main
    protocol) it can never be cached and re-used. *)

open Mediactl_types

type line = {
  medium : Medium.t;
  addr : Address.t;
  codecs : Codec.t list;
  active : bool;  (** false models the inactive direction attribute used
                      for SIP hold *)
}

val line : ?active:bool -> Medium.t -> Address.t -> Codec.t list -> line

type t = { owner : string; session_version : int; lines : line list }

val offer : owner:string -> session_version:int -> line list -> t

val answer : t -> owner:string -> addr:Address.t -> willing:Codec.t list -> t option
(** Per-line intersection of the offer with [willing]; [None] when any
    line has no codec in common (the negotiation fails). *)

val compatible : offer:t -> answer:t -> bool
(** Every answer line's codecs are a subset of the offer line's. *)

val inactive : t -> owner:string -> session_version:int -> t
(** The same media lines with every direction marked inactive: the body a
    server offers to put a party on hold. *)

val all_active : t -> bool

val pp : Format.formatter -> t -> unit
