(** The SIP comparison scenarios of paper section IX-B.

    All latencies in milliseconds, under the same (n, c) parameters as
    the main protocol's driver. *)

type outcome = {
  latency : float;  (** until both endpoints hold fresh, correct sessions *)
  messages : int;  (** SIP messages exchanged *)
  glares : int;  (** 491 failures suffered *)
  attempts : int;  (** operations started (1 = no retry needed) *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val fig14_race : ?seed:int -> ?n:float -> ?c:float -> unit -> outcome
(** Figure 14: the PBX and PC relink concurrently; their inner INVITEs
    cross, both fail with 491, and the operation completes only after a
    randomized back-off.  The paper's analysis gives [10n + 11c + d]
    with [d] expected around 3 s. *)

val fig14_common : ?seed:int -> ?n:float -> ?c:float -> unit -> outcome
(** The common case: a single server performs the third-party call
    control while the other box merely proxies.  The paper's analysis
    gives [7n + 7c] (378 ms at the default parameters). *)

val glare_modify : ?seed:int -> ?n:float -> ?c:float -> unit -> outcome
(** Both endpoints of a direct SIP dialog issue re-INVITEs at the same
    moment (the SIP counterpart of two concurrent [modify] events): both
    transactions glare and serialize through randomized retries. *)

val hold_resume :
  ?seed:int -> ?n:float -> ?c:float -> unit -> outcome * outcome
(** The section-XI extension — the specification's hold semantics
    implemented over SIP: a single server establishes A-C by third-party
    call control, puts both parties on hold (re-INVITEs with inactive
    media, the counterpart of two holdslots), then resumes (which must
    re-solicit, since SIP offers cannot be cached).  Returns the (hold,
    resume) outcomes. *)

val race_formula : n:float -> c:float -> d:float -> float
(** [10n + 11c + d]. *)

val common_formula : n:float -> c:float -> float
(** [7n + 7c]. *)
