open Mediactl_sim

type event = Deliver of { from_ : string; to_ : string; msg : Sip_msg.t } | Act of int

type t = {
  engine : event Engine.t;
  n : float;
  c : float;
  mutable handlers : (string * (from:string -> Sip_msg.t -> unit)) list;
  mutable actions : (unit -> unit) list;  (* reversed; indexed from end *)
  mutable message_count : int;
  mutable txn_seq : int;
}

let create ?(seed = 7) ?(n = 34.0) ?(c = 20.0) () =
  {
    engine = Engine.create ~seed ();
    n;
    c;
    handlers = [];
    actions = [];
    message_count = 0;
    txn_seq = 0;
  }

let n t = t.n
let c t = t.c
let now t = Engine.now t.engine
let rng t = Engine.rng t.engine

let register t name handler =
  t.handlers <- (name, handler) :: List.remove_assoc name t.handlers

let send t ~from_ ~to_ msg =
  t.message_count <- t.message_count + 1;
  Engine.schedule t.engine ~delay:(t.n +. t.c) (Deliver { from_; to_; msg })

let after t delay f =
  t.actions <- f :: t.actions;
  Engine.schedule t.engine ~delay (Act (List.length t.actions - 1))

let handle t = function
  | Deliver { from_; to_; msg } -> (
    match List.assoc_opt to_ t.handlers with
    | Some handler -> handler ~from:from_ msg
    | None -> ())
  | Act idx ->
    let len = List.length t.actions in
    (List.nth t.actions (len - 1 - idx)) ()

let run ?until ?max_events t = Engine.run t.engine ?until ?max_events (fun _ e -> handle t e)

let messages t = t.message_count

let fresh_txn t =
  t.txn_seq <- t.txn_seq + 1;
  t.txn_seq
