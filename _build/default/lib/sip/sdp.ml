open Mediactl_types

type line = { medium : Medium.t; addr : Address.t; codecs : Codec.t list; active : bool }

let line ?(active = true) medium addr codecs = { medium; addr; codecs; active }

type t = { owner : string; session_version : int; lines : line list }

let offer ~owner ~session_version lines =
  if lines = [] then invalid_arg "Sdp.offer: no media lines";
  { owner; session_version; lines }

let answer offer ~owner ~addr ~willing =
  let answer_line l =
    let common = List.filter (fun c -> List.exists (Codec.equal c) willing) l.codecs in
    if common = [] then None
    else
      (* The answer mirrors the offered direction: an inactive offer can
         only be answered inactive. *)
      Some { medium = l.medium; addr; codecs = common; active = l.active }
  in
  let lines = List.map answer_line offer.lines in
  if List.exists Option.is_none lines then None
  else
    Some
      {
        owner;
        session_version = offer.session_version;
        lines = List.filter_map Fun.id lines;
      }

let compatible ~offer ~answer =
  List.length offer.lines = List.length answer.lines
  && List.for_all2
       (fun o a ->
         Medium.equal o.medium a.medium
         && List.for_all (fun c -> List.exists (Codec.equal c) o.codecs) a.codecs)
       offer.lines answer.lines

let inactive t ~owner ~session_version =
  {
    owner;
    session_version;
    lines = List.map (fun l -> { l with active = false }) t.lines;
  }

let all_active t = List.for_all (fun l -> l.active) t.lines

let pp ppf t =
  Format.fprintf ppf "sdp(%s v%d, %d lines)" t.owner t.session_version (List.length t.lines)
