type body = Offer of Sdp.t | Answer of Sdp.t

type t =
  | Invite of { txn : int; body : body option }
  | Success of { txn : int; body : body option }
  | Glare of { txn : int }
  | Ack of { txn : int; body : body option }

let txn = function
  | Invite { txn; _ } | Success { txn; _ } | Glare { txn } | Ack { txn; _ } -> txn

let name = function
  | Invite { body = None; _ } -> "INVITE(no offer)"
  | Invite { body = Some (Offer _); _ } -> "INVITE(offer)"
  | Invite { body = Some (Answer _); _ } -> "INVITE(answer?)"
  | Success { body = None; _ } -> "200"
  | Success { body = Some (Offer _); _ } -> "200(offer)"
  | Success { body = Some (Answer _); _ } -> "200(answer)"
  | Glare _ -> "491"
  | Ack { body = None; _ } -> "ACK"
  | Ack { body = Some _; _ } -> "ACK(answer)"

let pp ppf t = Format.fprintf ppf "%s#%d" (name t) (txn t)
