(** The message fabric for the SIP baseline: named nodes exchanging SIP
    messages point-to-point under the same latency model as the main
    protocol's driver — transit [n], then compute [c] before the
    receiver's reaction commits. *)

open Mediactl_sim

type t

val create : ?seed:int -> ?n:float -> ?c:float -> unit -> t
val n : t -> float
val c : t -> float
val now : t -> float
val rng : t -> Rng.t

val register : t -> string -> (from:string -> Sip_msg.t -> unit) -> unit
(** Install a node's message handler; re-registering replaces it. *)

val send : t -> from_:string -> to_:string -> Sip_msg.t -> unit
(** Deliver to the destination handler [n + c] from now. *)

val after : t -> float -> (unit -> unit) -> unit

val run : ?until:float -> ?max_events:int -> t -> int

val messages : t -> int
(** Total SIP messages sent so far. *)

val fresh_txn : t -> int
(** Globally unique transaction ids, for convenience. *)
