open Mediactl_types

type outcome = { latency : float; messages : int; glares : int; attempts : int }

let pp_outcome ppf o =
  Format.fprintf ppf "latency=%.0fms messages=%d glares=%d attempts=%d" o.latency o.messages
    o.glares o.attempts

let audio_line addr = Sdp.line Medium.Audio addr [ Codec.G711; Codec.G726 ]

let addr_a = Address.v "10.0.0.1" 5000
let addr_c = Address.v "10.0.0.3" 5000
let willing = [ Codec.G711; Codec.G726 ]

let first_with owner ua =
  List.find_map (fun (time, o) -> if o = owner then Some time else None) (Ua.history ua)

let fig14_race ?(seed = 11) ?n ?c () =
  let fabric = Fabric.create ~seed ?n ?c () in
  let a = Ua.create fabric ~name:"A" ~peer:"PBX" ~owner_of_dialog:true addr_a ~willing
      ~media:[ audio_line addr_a ] in
  let cep = Ua.create fabric ~name:"C" ~peer:"PC" ~owner_of_dialog:false addr_c ~willing
      ~media:[ audio_line addr_c ] in
  let pbx =
    B2bua.create fabric ~name:"PBX" ~outer:"A" ~inner:"PC" ~retry_lo:2100.0 ~retry_hi:4000.0
  in
  let pc = B2bua.create fabric ~name:"PC" ~outer:"C" ~inner:"PBX" ~retry_lo:0.0 ~retry_hi:2000.0 in
  B2bua.relink pbx;
  B2bua.relink pc;
  let _ = Fabric.run ~until:60_000.0 fabric in
  let latency =
    match first_with "C" a, first_with "A" cep with
    | Some ta, Some tc -> Float.max ta tc
    | _ -> nan
  in
  {
    latency;
    messages = Fabric.messages fabric;
    glares = B2bua.glares pbx + B2bua.glares pc;
    attempts = B2bua.attempts pbx + B2bua.attempts pc;
  }

let fig14_common ?(seed = 11) ?n ?c () =
  let fabric = Fabric.create ~seed ?n ?c () in
  let a = Ua.create fabric ~name:"A" ~peer:"PBX" ~owner_of_dialog:true addr_a ~willing
      ~media:[ audio_line addr_a ] in
  let cep = Ua.create fabric ~name:"C" ~peer:"PC" ~owner_of_dialog:false addr_c ~willing
      ~media:[ audio_line addr_c ] in
  (* Only PC manipulates media; the PBX merely relays. *)
  B2bua.relay fabric ~name:"PBX" ~a:"A" ~b:"PC";
  let pc = B2bua.create fabric ~name:"PC" ~outer:"C" ~inner:"PBX" ~retry_lo:0.0 ~retry_hi:2000.0 in
  B2bua.relink pc;
  let _ = Fabric.run ~until:60_000.0 fabric in
  let latency =
    match first_with "C" a, first_with "A" cep with
    | Some ta, Some tc -> Float.max ta tc
    | _ -> nan
  in
  {
    latency;
    messages = Fabric.messages fabric;
    glares = B2bua.glares pc;
    attempts = B2bua.attempts pc;
  }

let glare_modify ?(seed = 11) ?n ?c () =
  let fabric = Fabric.create ~seed ?n ?c () in
  let x = Ua.create fabric ~name:"X" ~peer:"Y" ~owner_of_dialog:true addr_a ~willing
      ~media:[ audio_line addr_a ] in
  let y = Ua.create fabric ~name:"Y" ~peer:"X" ~owner_of_dialog:false addr_c ~willing
      ~media:[ audio_line addr_c ] in
  Ua.reinvite x;
  Ua.reinvite y;
  let _ = Fabric.run ~until:60_000.0 fabric in
  let latency =
    match Ua.own_done_at x, Ua.own_done_at y with
    | Some tx, Some ty -> Float.max tx ty
    | _ -> nan
  in
  {
    latency;
    messages = Fabric.messages fabric;
    glares = Ua.glares x + Ua.glares y;
    attempts = 2 + Ua.retries x + Ua.retries y;
  }

let hold_resume ?(seed = 11) ?n ?c () =
  let fabric = Fabric.create ~seed ?n ?c () in
  let a = Ua.create fabric ~name:"A" ~peer:"SRV" ~owner_of_dialog:true addr_a ~willing
      ~media:[ audio_line addr_a ] in
  let cep = Ua.create fabric ~name:"C" ~peer:"SRV" ~owner_of_dialog:false addr_c ~willing
      ~media:[ audio_line addr_c ] in
  let srv = B2bua.create fabric ~name:"SRV" ~outer:"C" ~inner:"A" ~retry_lo:0.0 ~retry_hi:2000.0 in
  (* Establish A-C. *)
  B2bua.relink srv;
  let _ = Fabric.run fabric in
  assert (Ua.session_active a && Ua.session_active cep);
  let established = Fabric.messages fabric in
  (* Hold both parties. *)
  let t_hold_start = Fabric.now fabric in
  let held_at = ref nan in
  B2bua.hold srv;
  let rec run_until_held () =
    if Fabric.run ~max_events:1 fabric = 0 then ()
    else if
      Float.is_nan !held_at && (not (Ua.session_active a)) && not (Ua.session_active cep)
    then held_at := Fabric.now fabric
    else run_until_held ()
  in
  run_until_held ();
  let _ = Fabric.run fabric in
  let hold_messages = Fabric.messages fabric - established in
  (* Resume. *)
  let t_resume_start = Fabric.now fabric in
  let resumed_at = ref nan in
  B2bua.resume srv;
  let rec run_until_resumed () =
    if Fabric.run ~max_events:1 fabric = 0 then ()
    else if Float.is_nan !resumed_at && Ua.session_active a && Ua.session_active cep then
      resumed_at := Fabric.now fabric
    else run_until_resumed ()
  in
  run_until_resumed ();
  let _ = Fabric.run fabric in
  let resume_messages = Fabric.messages fabric - established - hold_messages in
  ( {
      latency = !held_at -. t_hold_start;
      messages = hold_messages;
      glares = 0;
      attempts = 1;
    },
    {
      latency = !resumed_at -. t_resume_start;
      messages = resume_messages;
      glares = B2bua.glares srv;
      attempts = 1;
    } )

let race_formula ~n ~c ~d = (10.0 *. n) +. (11.0 *. c) +. d
let common_formula ~n ~c = (7.0 *. n) +. (7.0 *. c)
