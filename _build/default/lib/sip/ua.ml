open Mediactl_types
open Mediactl_sim

type outstanding = { txn : int; body : Sip_msg.body option }

type t = {
  fabric : Fabric.t;
  name : string;
  peer : string;
  owner_of_dialog : bool;
  addr : Address.t;
  willing : Codec.t list;
  media : Sdp.line list;
  mutable version : int;
  mutable outstanding : outstanding option;
  mutable answered_txn : int option;  (* we sent 200(answer), awaiting ACK *)
  mutable remote : Sdp.t option;
  mutable established : float option;
  mutable history : (float * string) list;
  mutable own_done : float option;
  mutable glares : int;
  mutable retries : int;
}

let name t = t.name
let established_at t = t.established
let remote t = t.remote
let glares t = t.glares
let retries t = t.retries
let session_active t =
  match t.remote with
  | Some sdp -> Sdp.all_active sdp
  | None -> false

let history t = List.rev t.history
let own_done_at t = t.own_done

let record t sdp =
  t.remote <- Some sdp;
  t.established <- Some (Fabric.now t.fabric);
  t.history <- (Fabric.now t.fabric, sdp.Sdp.owner) :: t.history

let own_sdp t =
  t.version <- t.version + 1;
  Sdp.offer ~owner:t.name ~session_version:t.version t.media

let send t msg = Fabric.send t.fabric ~from_:t.name ~to_:t.peer msg

let start_invite t =
  let txn = Fabric.fresh_txn t.fabric in
  let body = Some (Sip_msg.Offer (own_sdp t)) in
  t.outstanding <- Some { txn; body };
  send t (Sip_msg.Invite { txn; body })

let retry_delay t =
  (* RFC 3261 section 14.1 glare back-off. *)
  let rng = Fabric.rng t.fabric in
  if t.owner_of_dialog then Rng.uniform rng ~lo:2100.0 ~hi:4000.0
  else Rng.uniform rng ~lo:0.0 ~hi:2000.0

let reinvite t =
  match t.outstanding with
  | Some _ -> ()  (* must wait for the ongoing transaction *)
  | None -> start_invite t

let handle t ~from:_ msg =
  match msg with
  | Sip_msg.Invite { txn; body } -> (
    match t.outstanding with
    | Some _ ->
      (* Glare: an invite transaction cannot overlap another on the
         same signaling path. *)
      send t (Sip_msg.Glare { txn })
    | None -> (
      match body with
      | Some (Sip_msg.Offer offer) -> (
        match Sdp.answer offer ~owner:t.name ~addr:t.addr ~willing:t.willing with
        | Some answer ->
          record t offer;
          t.answered_txn <- Some txn;
          send t (Sip_msg.Success { txn; body = Some (Sip_msg.Answer answer) })
        | None -> send t (Sip_msg.Glare { txn }))
      | Some (Sip_msg.Answer _) ->
        (* Malformed: an invite never carries an answer. *)
        send t (Sip_msg.Glare { txn })
      | None ->
        (* A solicitation (third-party call control): respond with a
           fresh offer; the answer will arrive in the ACK. *)
        t.answered_txn <- Some txn;
        send t (Sip_msg.Success { txn; body = Some (Sip_msg.Offer (own_sdp t)) })))
  | Sip_msg.Success { txn; body } -> (
    match t.outstanding with
    | Some o when o.txn = txn ->
      t.outstanding <- None;
      (match body with
      | Some (Sip_msg.Answer answer) ->
        record t answer;
        t.own_done <- Some (Fabric.now t.fabric);
        send t (Sip_msg.Ack { txn; body = None })
      | Some (Sip_msg.Offer _) | None ->
        (* Plain endpoints never solicit, so nothing sensible to do
           except complete the transaction. *)
        send t (Sip_msg.Ack { txn; body = None }))
    | Some _ | None -> ())
  | Sip_msg.Glare { txn } -> (
    match t.outstanding with
    | Some o when o.txn = txn ->
      t.outstanding <- None;
      t.glares <- t.glares + 1;
      t.retries <- t.retries + 1;
      Fabric.after t.fabric (retry_delay t) (fun () ->
          match t.outstanding with
          | None -> start_invite t
          | Some _ -> ())
    | Some _ | None -> ())
  | Sip_msg.Ack { txn; body } -> (
    match t.answered_txn with
    | Some expected when expected = txn ->
      t.answered_txn <- None;
      (match body with
      | Some (Sip_msg.Answer answer) ->
        (* We offered in our 200; the answer arrives in the ACK. *)
        record t answer
      | Some (Sip_msg.Offer _) -> ()
      | None -> t.established <- Some (Fabric.now t.fabric))
    | Some _ | None -> ())

let create fabric ~name ~peer ~owner_of_dialog addr ~willing ~media =
  let t =
    {
      fabric;
      name;
      peer;
      owner_of_dialog;
      addr;
      willing;
      media;
      version = 0;
      outstanding = None;
      answered_txn = None;
      remote = None;
      established = None;
      history = [];
      own_done = None;
      glares = 0;
      retries = 0;
    }
  in
  Fabric.register fabric name (handle t);
  t
