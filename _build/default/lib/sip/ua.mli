(** A SIP user agent at a media endpoint.

    Answers invites (producing an answer to an offer, or a fresh offer
    when solicited), acknowledges, and detects glare: an invite arriving
    while its own invite transaction is outstanding is refused with 491,
    and its own refused invites are retried after a randomly chosen delay
    (RFC 3261 section 14.1: the owner of the dialog retries after
    2.1–4 s, the other party after 0–2 s). *)

open Mediactl_types

type t

val create :
  Fabric.t ->
  name:string ->
  peer:string ->
  owner_of_dialog:bool ->
  Address.t ->
  willing:Codec.t list ->
  media:Sdp.line list ->
  t

val name : t -> string

val reinvite : t -> unit
(** Start a re-INVITE transaction offering this agent's media (the SIP
    counterpart of a [modify]); retried automatically on glare. *)

val established_at : t -> float option
(** When the last offer/answer exchange involving this agent completed
    (it holds a fresh remote description and the transaction is over). *)

val remote : t -> Sdp.t option

val session_active : t -> bool
(** The agent holds a remote description whose media lines are all
    active (i.e. it is not on hold). *)

val glares : t -> int
(** How many 491 rejections this agent's own invites have suffered. *)

val retries : t -> int

val history : t -> (float * string) list
(** Every completed offer/answer exchange, oldest first, as
    [(time, owner of the remote description installed)]. *)

val own_done_at : t -> float option
(** When this agent's own (re-)INVITE last completed. *)
