lib/sip/b2bua.mli: Fabric
