lib/sip/sip_msg.mli: Format Sdp
