lib/sip/scenario.mli: Format
