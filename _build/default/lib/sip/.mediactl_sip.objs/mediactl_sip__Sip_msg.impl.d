lib/sip/sip_msg.ml: Format Sdp
