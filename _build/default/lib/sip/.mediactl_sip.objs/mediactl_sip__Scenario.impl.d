lib/sip/scenario.ml: Address B2bua Codec Fabric Float Format List Mediactl_types Medium Sdp Ua
