lib/sip/fabric.mli: Mediactl_sim Rng Sip_msg
