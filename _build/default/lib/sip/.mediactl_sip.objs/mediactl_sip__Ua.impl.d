lib/sip/ua.ml: Address Codec Fabric List Mediactl_sim Mediactl_types Rng Sdp Sip_msg
