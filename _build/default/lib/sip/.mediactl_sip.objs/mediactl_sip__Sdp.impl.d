lib/sip/sdp.ml: Address Codec Format Fun List Mediactl_types Medium Option
