lib/sip/b2bua.ml: Fabric List Mediactl_sim Mediactl_types Rng Sdp Sip_msg
