lib/sip/ua.mli: Address Codec Fabric Mediactl_types Sdp
