lib/sip/fabric.ml: Engine List Mediactl_sim Sip_msg
