lib/sip/sdp.mli: Address Codec Format Mediactl_types Medium
