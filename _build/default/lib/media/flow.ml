open Mediactl_types
open Mediactl_protocol

type direction = { flows : bool; codec : Codec.t option }

type t = {
  a : string;
  b : string;
  medium : Medium.t option;
  a_to_b : direction;
  b_to_a : direction;
}

let direction ~tx ~rx =
  (* The sender transmits with its selected codec; the receiver must be
     expecting that same selector.  Both conditions are per-slot
     observations; agreement on the codec follows because the selector
     travelling end-to-end is the same record. *)
  let flows = Slot.tx_enabled tx && Slot.rx_enabled rx in
  { flows; codec = (if flows then Slot.tx_codec tx else None) }

let between ~a slot_a ~b slot_b =
  {
    a;
    b;
    medium = slot_a.Slot.medium;
    a_to_b = direction ~tx:slot_a ~rx:slot_b;
    b_to_a = direction ~tx:slot_b ~rx:slot_a;
  }

let directed t =
  let dir from_ to_ d acc =
    match d.flows, d.codec with
    | true, Some c -> (from_, to_, c) :: acc
    | true, None | false, _ -> acc
  in
  dir t.a t.b t.a_to_b (dir t.b t.a t.b_to_a [])

let two_way t = t.a_to_b.flows && t.b_to_a.flows
let one_way t = t.a_to_b.flows <> t.b_to_a.flows
let silent t = (not t.a_to_b.flows) && not t.b_to_a.flows

let pp ppf t =
  let arrow =
    if two_way t then "<==>"
    else if t.a_to_b.flows then "===>"
    else if t.b_to_a.flows then "<==="
    else "-/-"
  in
  Format.fprintf ppf "%s %s %s" t.a arrow t.b

let edges snapshot =
  snapshot
  |> List.concat_map (fun t -> List.map (fun (x, y, _) -> (x, y)) (directed t))
  |> List.sort_uniq compare

let same_edges snapshot expected = edges snapshot = List.sort_uniq compare expected
