open Mediactl_types

type packet = { seq : int; sent_at : float; codec : Codec.t }

let generate ~start ~stop ~interval codec =
  if interval <= 0.0 then invalid_arg "Rtp.generate: interval must be positive";
  let rec loop seq at acc =
    if at > stop then List.rev acc
    else loop (seq + 1) (at +. interval) ({ seq; sent_at = at; codec } :: acc)
  in
  loop 0 start []

type account = { delivered : int; clipped : int }

let account packets ~transit ~ready_at =
  List.fold_left
    (fun acc p ->
      if p.sent_at +. transit >= ready_at then { acc with delivered = acc.delivered + 1 }
      else { acc with clipped = acc.clipped + 1 })
    { delivered = 0; clipped = 0 }
    packets

let pp_account ppf a = Format.fprintf ppf "%d delivered, %d clipped" a.delivered a.clipped
