(** Media-flow snapshots: who is actually sending packets to whom.

    A media channel exists between the two endpoints of a signaling path;
    media flows in a direction only when the sender has committed to a
    real codec (it sent a fresh selector) and the receiver is set up for
    it (it received that selector answering its own current descriptor).
    These are precisely the [tx_enabled]/[rx_enabled] observations of the
    slot machine, evaluated at the two path endpoints.

    Snapshots are how the repository compares the erroneous media control
    of the paper's Figure 2 against the correct control of Figure 3: each
    snapshot is a set of directed flows between named endpoints. *)

open Mediactl_types
open Mediactl_protocol

(** One direction of a media channel. *)
type direction = { flows : bool; codec : Codec.t option }

type t = {
  a : string;
  b : string;
  medium : Medium.t option;
  a_to_b : direction;
  b_to_a : direction;
}

val between : a:string -> Slot.t -> b:string -> Slot.t -> t
(** Evaluate the flow over a path whose left endpoint slot belongs to [a]
    and right endpoint slot to [b]. *)

val directed : t -> (string * string * Codec.t) list
(** The directed flows as [(sender, receiver, codec)] triples. *)

val two_way : t -> bool
val one_way : t -> bool
val silent : t -> bool

val pp : Format.formatter -> t -> unit

(** {2 Snapshot comparison} *)

val edges : t list -> (string * string) list
(** All directed sender→receiver pairs of a snapshot, sorted. *)

val same_edges : t list -> (string * string) list -> bool
(** Does the snapshot contain exactly these directed flows? *)
