lib/media/flow.mli: Codec Format Mediactl_protocol Mediactl_types Medium Slot
