lib/media/rtp.mli: Codec Format Mediactl_types
