lib/media/rtp.ml: Codec Format List Mediactl_types
