lib/media/flow.ml: Codec Format List Mediactl_protocol Mediactl_types Medium Slot
