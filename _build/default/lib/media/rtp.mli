(** A small RTP-like packet model for studying media clipping.

    Clipping happens when media packets arrive at an endpoint before the
    endpoint is set up to receive them (paper section VI-A).  Under the
    protocol's {e relaxed} synchronization an endpoint may transmit as
    soon as it has sent a selector with a real codec, while the receiver
    only listens once it has received that selector; packets in flight
    during that window are lost.  Under {e eager} listening (paper
    footnote 5) the receiver accepts packets in any allowed codec as soon
    as it has sent its descriptor, eliminating clipping at the cost of
    always-on decoding. *)

open Mediactl_types

type packet = { seq : int; sent_at : float; codec : Codec.t }

val generate : start:float -> stop:float -> interval:float -> Codec.t -> packet list
(** Packets emitted by a sender transmitting from [start] (exclusive of
    nothing — the first packet goes out at [start]) until [stop], one
    every [interval]. *)

type account = { delivered : int; clipped : int }

val account : packet list -> transit:float -> ready_at:float -> account
(** Deliver each packet [transit] after it was sent; packets arriving
    before [ready_at] are clipped. *)

val pp_account : Format.formatter -> account -> unit
