(** Signaling-path extraction over a network (paper section III-A).

    A signaling path is a maximal chain of tunnels and flowlinks.  Path
    ends are slots not assigned to any flowlink; interior slots belong to
    flowlinks, which join two tunnels.  The extraction is how the rule of
    {e proximity confers priority} is encoded structurally: each box on a
    path controls everything beyond it, simply by deciding what its slots
    are linked to. *)

open Mediactl_core

type endpoint = {
  ref_ : Netsys.slot_ref;
  kind : Semantics.end_kind option;
      (** [None] when the slot is unbound rather than goal-controlled *)
}

type t = {
  left : endpoint;
  right : endpoint;
  tunnels : int;  (** number of tunnels on the path *)
}

val all : Netsys.t -> t list
(** Every signaling path in the network, each reported once. *)

val find : Netsys.t -> a:string -> b:string -> t option
(** The path whose two end slots live in boxes [a] and [b], if any. *)

val spec : t -> Semantics.spec option
(** The section-V specification applicable to this path, when both ends
    are goal-controlled. *)

val flow : Netsys.t -> t -> Mediactl_media.Flow.t option
(** The media-flow snapshot over this path, named by the endpoint
    boxes. *)

val flows : Netsys.t -> Mediactl_media.Flow.t list
(** Snapshots for all paths. *)

val pp : Format.formatter -> t -> unit
