open Mediactl_types

type behavior = Answers | Busy | No_answer

let react timed ~box local behavior =
  let net = Timed.net timed in
  List.iter
    (fun (key, _) ->
      let r = { Netsys.box; key } in
      match Netsys.binding net r with
      | Some Netsys.Unbound -> (
        Timed.send_meta timed ~chan:key.Netsys.chan ~from:box
          (match behavior with
          | Answers | No_answer -> Meta.Available
          | Busy -> Meta.Unavailable);
        match behavior with
        | Answers -> Timed.apply timed (fun net -> Netsys.bind_hold net r local)
        | Busy -> Timed.apply timed (fun net -> Netsys.bind_close net r)
        | No_answer ->
          (* Mark the slot as owned-but-ringing by binding nothing; the
             passive slot semantics keep the protocol consistent. *)
          ())
      | Some (Netsys.Open_b _ | Netsys.Close_b _ | Netsys.Hold_b _ | Netsys.Link_b _) | None ->
        ())
    (Netsys.slots_of_box net box)

let install timed ~box local behavior =
  (* React to channels that already exist and to any created later. *)
  let seen = ref [] in
  let scan _ =
    let keys = List.map fst (Netsys.slots_of_box (Timed.net timed) box) in
    let fresh = List.filter (fun k -> not (List.mem k !seen)) keys in
    if fresh <> [] then begin
      seen := keys;
      react timed ~box local behavior
    end
  in
  Timed.on_step timed scan;
  scan timed

let hang_up timed ~box ~chan = Timed.send_meta timed ~chan ~from:box Meta.Teardown

let accept_now timed ~box ~chan local =
  Timed.apply timed (fun net ->
      Netsys.bind_hold net (Netsys.slot_ref ~box ~chan ()) local)
