open Mediactl_core

type endpoint = { ref_ : Netsys.slot_ref; kind : Semantics.end_kind option }

type t = { left : endpoint; right : endpoint; tunnels : int }

let kind_of_binding = function
  | Netsys.Open_b _ -> Some Semantics.Open_end
  | Netsys.Close_b _ -> Some Semantics.Close_end
  | Netsys.Hold_b _ -> Some Semantics.Hold_end
  | Netsys.Link_b _ | Netsys.Unbound -> None

let is_path_end = function
  | Netsys.Link_b _ -> false
  | Netsys.Open_b _ | Netsys.Close_b _ | Netsys.Hold_b _ | Netsys.Unbound -> true

(* The slot at the far end of the same tunnel. *)
let across net (r : Netsys.slot_ref) =
  Option.map
    (fun box -> { Netsys.box; key = r.Netsys.key })
    (Netsys.peer_of_chan net ~chan:r.Netsys.key.Netsys.chan ~box:r.Netsys.box)

(* The other slot of the flowlink this slot belongs to, if any. *)
let through_link net (r : Netsys.slot_ref) =
  match Netsys.binding net r with
  | Some (Netsys.Link_b (id, side)) ->
    Option.map
      (fun (_, k1, k2) ->
        let key = match side with Mediactl_core.Flow_link.Left -> k2 | Flow_link.Right -> k1 in
        { Netsys.box = r.Netsys.box; key })
      (Netsys.find_link net ~box:r.Netsys.box ~id)
  | Some (Netsys.Open_b _ | Netsys.Close_b _ | Netsys.Hold_b _ | Netsys.Unbound) | None -> None

let endpoint net r = { ref_ = r; kind = Option.bind (Netsys.binding net r) kind_of_binding }

(* Walk rightward from an end slot: tunnel, then flowlink, then tunnel
   ... until a slot with no flowlink. *)
let walk net start =
  let rec go r tunnels =
    match across net r with
    | None -> None
    | Some peer -> (
      match through_link net peer with
      | None -> Some (peer, tunnels + 1)
      | Some continued -> go continued (tunnels + 1))
  in
  go start 0

let all_end_slots net =
  List.concat_map
    (fun box ->
      List.filter_map
        (fun (key, _) ->
          let r = { Netsys.box; key } in
          match Netsys.binding net r with
          | Some b when is_path_end b -> Some r
          | Some _ | None -> None)
        (Netsys.slots_of_box net box))
    (Netsys.boxes net)

let all net =
  let ends = all_end_slots net in
  List.filter_map
    (fun start ->
      match walk net start with
      | None -> None
      | Some (finish, tunnels) ->
        (* Report each path once, from its lexicographically smaller
           end. *)
        if compare start finish <= 0 then
          Some { left = endpoint net start; right = endpoint net finish; tunnels }
        else None)
    ends

let find net ~a ~b =
  List.find_opt
    (fun p ->
      (p.left.ref_.Netsys.box = a && p.right.ref_.Netsys.box = b)
      || (p.left.ref_.Netsys.box = b && p.right.ref_.Netsys.box = a))
    (all net)

let spec p =
  match p.left.kind, p.right.kind with
  | Some a, Some b -> Some (Semantics.spec_of a b)
  | (Some _ | None), _ -> None

let flow net p =
  match Netsys.slot net p.left.ref_, Netsys.slot net p.right.ref_ with
  | Some sl, Some sr ->
    Some
      (Mediactl_media.Flow.between ~a:p.left.ref_.Netsys.box sl ~b:p.right.ref_.Netsys.box sr)
  | (Some _ | None), _ -> None

let flows net = List.filter_map (flow net) (all net)

let pp ppf p =
  let kind ppf = function
    | Some k -> Semantics.pp_end_kind ppf k
    | None -> Format.pp_print_string ppf "unbound"
  in
  Format.fprintf ppf "%s(%a) ~%d~ %s(%a)" p.left.ref_.Netsys.box kind p.left.kind p.tunnels
    p.right.ref_.Netsys.box kind p.right.kind
