(** The state-oriented programming model for box programs (paper section
    IV, Figure 6).

    A box program is a finite-state machine.  In each program state,
    annotations give a static description of the programmer's {e goal}
    for each slot while the program is in that state; transitions are
    triggered by slot-state predicates ([isFlowing], [isClosed]),
    meta-signals, and timeouts, and perform meta-actions such as creating
    or destroying signaling channels and setting timers.

    Goal-object identity follows the paper: when a slot's annotation in
    the target state is the same as in the source state, the same goal
    object keeps controlling the slot (it is not restarted); only changed
    annotations cause new goal objects to be instantiated.

    Programs name slots by channel: the slot named [ch] is tunnel 0 of
    channel [ch] at this box. *)

open Mediactl_types
open Mediactl_core

type annotation =
  | Ann_open of string * Medium.t  (** [openSlot(ch, medium)] *)
  | Ann_close of string  (** [closeSlot(ch)] *)
  | Ann_hold of string  (** [holdSlot(ch)] *)
  | Ann_link of string * string  (** [flowLink(ch1, ch2)] *)

type guard =
  | Is_flowing of string
  | Is_closed of string
  | On_meta of string * Meta.t  (** a meta-signal arrived on a channel *)
  | On_timeout of string  (** the named timer expired *)

type action =
  | Create_channel of { chan : string; toward : string; tunnels : int }
  | Destroy_channel of string
  | Set_timer of { timer : string; after : float }
  | Send_meta of { chan : string; meta : Meta.t }

(** A transition: when the guard fires, perform the actions and move to
    the target state ([None] = terminate the program). *)
type transition = { guard : guard; actions : action list; target : string option }

type state_def = {
  s_name : string;
  annotations : annotation list;
  transitions : transition list;
}

type t = {
  box : string;  (** the box this program runs in *)
  face : Local.t;  (** the media face its endpoint-acting goals present *)
  launch_actions : action list;
      (** performed when the program starts, before the initial state's
          annotations are applied (e.g. create the first signaling
          channel, set a no-answer timer) *)
  initial : string;
  states : state_def list;
}

val validate : t -> (unit, string) result
(** Static checks: the initial state and all transition targets exist,
    and no slot is annotated twice in one state. *)

(** {2 Execution under the timed driver} *)

type running

val launch : Timed.t -> t -> running
(** Install the program: bind the initial state's annotations and
    register its guard evaluation on the driver.  The program then runs
    autonomously as events unfold. *)

val current_state : running -> string option
(** [None] once the program has terminated. *)

val trace : running -> (float * string) list
(** The program states entered, oldest first, with entry times. *)
