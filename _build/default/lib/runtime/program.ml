open Mediactl_types
open Mediactl_core
open Mediactl_protocol

type annotation =
  | Ann_open of string * Medium.t
  | Ann_close of string
  | Ann_hold of string
  | Ann_link of string * string

type guard =
  | Is_flowing of string
  | Is_closed of string
  | On_meta of string * Meta.t
  | On_timeout of string

type action =
  | Create_channel of { chan : string; toward : string; tunnels : int }
  | Destroy_channel of string
  | Set_timer of { timer : string; after : float }
  | Send_meta of { chan : string; meta : Meta.t }

type transition = { guard : guard; actions : action list; target : string option }

type state_def = {
  s_name : string;
  annotations : annotation list;
  transitions : transition list;
}

type t = {
  box : string;
  face : Local.t;
  launch_actions : action list;
  initial : string;
  states : state_def list;
}

let slot_of_annotation = function
  | Ann_open (s, _) | Ann_close s | Ann_hold s -> [ s ]
  | Ann_link (s1, s2) -> [ s1; s2 ]

let validate t =
  let state_names = List.map (fun s -> s.s_name) t.states in
  let exists name = List.mem name state_names in
  if not (exists t.initial) then Error (Printf.sprintf "unknown initial state %s" t.initial)
  else
    let check_state acc st =
      match acc with
      | Error _ as e -> e
      | Ok () ->
        let slots = List.concat_map slot_of_annotation st.annotations in
        let dup =
          List.find_opt (fun s -> List.length (List.filter (String.equal s) slots) > 1) slots
        in
        (match dup with
        | Some s -> Error (Printf.sprintf "slot %s annotated twice in state %s" s st.s_name)
        | None ->
          let bad_target =
            List.find_opt
              (fun tr -> match tr.target with Some n -> not (exists n) | None -> false)
              st.transitions
          in
          (match bad_target with
          | Some { target = Some n; _ } ->
            Error (Printf.sprintf "unknown target state %s in %s" n st.s_name)
          | Some _ | None -> Ok ()))
    in
    List.fold_left check_state (Ok ()) t.states

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

type running = {
  program : t;
  timed : Timed.t;
  mutable state : string option;
  mutable timer_gen : (string * int) list;  (* current generation per timer *)
  mutable fired : string list;  (* expired timers not yet consumed *)
  mutable metas : (string * Meta.t) list;  (* arrived, not yet consumed *)
  mutable entered : (float * string) list;
}

let current_state r = r.state
let trace r = List.rev r.entered

let state_def r name = List.find_opt (fun s -> s.s_name = name) r.program.states

let slot_ref r chan = Netsys.slot_ref ~box:r.program.box ~chan ()

let apply_annotation r ann =
  let key chan = (slot_ref r chan).Netsys.key in
  match ann with
  | Ann_open (chan, medium) ->
    Timed.apply r.timed (fun net -> Netsys.bind_open net (slot_ref r chan) r.program.face medium)
  | Ann_close chan -> Timed.apply r.timed (fun net -> Netsys.bind_close net (slot_ref r chan))
  | Ann_hold chan ->
    Timed.apply r.timed (fun net -> Netsys.bind_hold net (slot_ref r chan) r.program.face)
  | Ann_link (c1, c2) ->
    let id = Printf.sprintf "%s<->%s" c1 c2 in
    Timed.apply r.timed (fun net ->
        Netsys.bind_link net ~box:r.program.box ~id (key c1) (key c2))

(* Entering a new state: apply only the annotations that changed, so
   unchanged goals keep their objects (paper section IV-B). *)
let reconcile r old_annotations new_state =
  List.iter
    (fun ann -> if not (List.mem ann old_annotations) then apply_annotation r ann)
    new_state.annotations

let rec fire_timer r name gen () =
  match List.assoc_opt name r.timer_gen with
  | Some current when current = gen ->
    r.fired <- name :: r.fired;
    evaluate r
  | Some _ | None -> ()

and run_action r action =
  match action with
  | Create_channel { chan; toward; tunnels } ->
    Timed.apply_quiet r.timed (fun net ->
        Netsys.connect net ~chan ~tunnels ~initiator:r.program.box ~acceptor:toward ())
  | Destroy_channel chan ->
    Timed.apply_quiet r.timed (fun net -> Netsys.disconnect net ~chan)
  | Set_timer { timer; after } ->
    let gen = 1 + Option.value ~default:0 (List.assoc_opt timer r.timer_gen) in
    r.timer_gen <- (timer, gen) :: List.remove_assoc timer r.timer_gen;
    Timed.after r.timed after (fun _ -> fire_timer r timer gen ())
  | Send_meta { chan; meta } ->
    Timed.send_meta r.timed ~chan ~from:r.program.box meta

and guard_holds r guard =
  match guard with
  | Is_flowing chan -> (
    match Netsys.slot (Timed.net r.timed) (slot_ref r chan) with
    | Some slot -> Slot.is_flowing slot
    | None -> false)
  | Is_closed chan -> (
    match Netsys.slot (Timed.net r.timed) (slot_ref r chan) with
    | Some slot -> Slot.is_closed slot
    | None -> false)
  | On_meta (chan, meta) -> List.exists (fun (c, m) -> c = chan && Meta.equal m meta) r.metas
  | On_timeout timer -> List.mem timer r.fired

and consume r guard =
  match guard with
  | On_meta (chan, meta) ->
    let rec drop = function
      | [] -> []
      | (c, m) :: rest when c = chan && Meta.equal m meta -> rest
      | pair :: rest -> pair :: drop rest
    in
    r.metas <- drop r.metas
  | On_timeout timer -> r.fired <- List.filter (fun t -> t <> timer) r.fired
  | Is_flowing _ | Is_closed _ -> ()

and take_transition r st tr =
  consume r tr.guard;
  List.iter (run_action r) tr.actions;
  (match tr.target with
  | None -> r.state <- None
  | Some next ->
    r.state <- Some next;
    r.entered <- (Timed.now r.timed, next) :: r.entered;
    (match state_def r next with
    | Some next_def -> reconcile r st.annotations next_def
    | None -> ()));
  evaluate r

and evaluate r =
  match r.state with
  | None -> ()
  | Some name -> (
    match state_def r name with
    | None -> ()
    | Some st -> (
      match List.find_opt (fun tr -> guard_holds r tr.guard) st.transitions with
      | Some tr -> take_transition r st tr
      | None -> ()))

let launch timed program =
  (match validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Program.launch: " ^ msg));
  let r =
    {
      program;
      timed;
      state = Some program.initial;
      timer_gen = [];
      fired = [];
      metas = [];
      entered = [ (Timed.now timed, program.initial) ];
    }
  in
  List.iter (run_action r) program.launch_actions;
  (match state_def r program.initial with
  | Some st -> reconcile r [] st
  | None -> ());
  Timed.on_meta timed (fun _ ~chan ~at meta ->
      if at = program.box then begin
        r.metas <- r.metas @ [ (chan, meta) ];
        evaluate r
      end);
  Timed.on_step timed (fun _ -> evaluate r);
  evaluate r;
  r
