open Mediactl_types
open Mediactl_sim

type event =
  | Arrival of Netsys.send  (* the signal reaches the box (transit n) *)
  | Process of Netsys.send  (* the box has computed its reaction (cost c) *)
  | Meta_arrival of { chan : string; at : string }
  | Scripted of int  (* index into the scripted-action table *)

type trace_entry = {
  at : float;  (** when the receiving box's reaction commits *)
  from_box : string;
  to_box : string;
  chan : string;
  tun : int;
  signal : Mediactl_types.Signal.t;
}

type t = {
  engine : event Engine.t;
  mutable network : Netsys.t;
  n : float;
  c : float;
  mutable scripted : (t -> unit) list;  (* reversed; index from the end *)
  mutable meta_handlers : (t -> chan:string -> at:string -> Meta.t -> unit) list;
  mutable step_hooks : (t -> unit) list;
  mutable watches : (int * (Netsys.t -> bool) * (float -> unit)) list;
  mutable watch_seq : int;
  mutable trace_rev : trace_entry list;
}

let create ?(seed = 42) ?(n = 34.0) ?(c = 20.0) network =
  {
    engine = Engine.create ~seed ();
    network;
    n;
    c;
    scripted = [];
    meta_handlers = [];
    step_hooks = [];
    watches = [];
    watch_seq = 0;
    trace_rev = [];
  }

let net t = t.network
let now t = Engine.now t.engine
let n t = t.n
let c t = t.c
let error t = Netsys.err t.network

(* A signal emitted at time T reaches its destination box at T + n and
   takes effect (the box's reaction commits) at T + n + c. *)

let apply t op =
  (* The operation itself is a box computation: its emissions leave the
     box c after now. *)
  let network, sends = op t.network in
  t.network <- network;
  List.iter (fun send -> Engine.schedule t.engine ~delay:(t.c +. t.n) (Arrival send)) sends

let apply_quiet t op = t.network <- op t.network

let register_scripted t f =
  t.scripted <- f :: t.scripted;
  List.length t.scripted - 1

let scripted_action t idx =
  let l = List.length t.scripted in
  List.nth t.scripted (l - 1 - idx)

let at t time f =
  let idx = register_scripted t f in
  let delay = Float.max 0.0 (time -. Engine.now t.engine) in
  Engine.schedule t.engine ~delay (Scripted idx)

let after t delay f =
  let idx = register_scripted t f in
  Engine.schedule t.engine ~delay (Scripted idx)

let send_meta t ~chan ~from meta =
  t.network <- Netsys.send_meta t.network ~chan ~from meta;
  match Netsys.peer_of_chan t.network ~chan ~box:from with
  | None -> ()
  | Some peer -> Engine.schedule t.engine ~delay:t.n (Meta_arrival { chan; at = peer })

let on_meta t handler = t.meta_handlers <- t.meta_handlers @ [ handler ]
let on_step t hook = t.step_hooks <- hook :: t.step_hooks

let run_watches t =
  let now = Engine.now t.engine in
  let still =
    List.filter
      (fun (_, pred, callback) ->
        if pred t.network then begin
          callback now;
          false
        end
        else true)
      t.watches
  in
  t.watches <- still

let when_true t pred callback =
  let id = t.watch_seq in
  t.watch_seq <- id + 1;
  t.watches <- (id, pred, callback) :: t.watches;
  run_watches t

let handle t event =
  (match event with
  | Arrival send -> Engine.schedule t.engine ~delay:t.c (Process send)
  | Process send -> (
    (* Record the signal for message-sequence charts before consuming
       it from the tunnel. *)
    (match Netsys.peer_of_chan t.network ~chan:send.Netsys.s_chan ~box:send.Netsys.to_ with
    | Some from_box -> (
      match
        Netsys.peek_signal t.network ~chan:send.Netsys.s_chan ~tun:send.Netsys.s_tun
          ~at:send.Netsys.to_
      with
      | Some signal ->
        t.trace_rev <-
          {
            at = Engine.now t.engine;
            from_box;
            to_box = send.Netsys.to_;
            chan = send.Netsys.s_chan;
            tun = send.Netsys.s_tun;
            signal;
          }
          :: t.trace_rev
      | None -> ())
    | None -> ());
    match Netsys.deliver t.network send with
    | None -> ()
    | Some (network, sends) ->
      t.network <- network;
      List.iter (fun s -> Engine.schedule t.engine ~delay:t.n (Arrival s)) sends)
  | Meta_arrival { chan; at } -> (
    match Netsys.take_meta t.network ~chan ~at with
    | None -> ()
    | Some (meta, network) ->
      t.network <- network;
      List.iter (fun handler -> handler t ~chan ~at meta) t.meta_handlers)
  | Scripted idx -> scripted_action t idx t);
  List.iter (fun hook -> hook t) t.step_hooks;
  run_watches t

let run ?until ?max_events t = Engine.run t.engine ?until ?max_events (fun _ e -> handle t e)

let trace t = List.rev t.trace_rev

let pp_trace ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "%8.1f ms  %-6s -> %-6s  %s.%d  %a@." e.at e.from_box e.to_box e.chan
        e.tun Mediactl_types.Signal.pp e.signal)
    (trace t)
