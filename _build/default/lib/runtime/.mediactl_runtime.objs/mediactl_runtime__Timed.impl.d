lib/runtime/timed.ml: Engine Float Format List Mediactl_sim Mediactl_types Meta Netsys
