lib/runtime/paths.mli: Format Mediactl_core Mediactl_media Netsys Semantics
