lib/runtime/timed.mli: Format Mediactl_types Meta Netsys
