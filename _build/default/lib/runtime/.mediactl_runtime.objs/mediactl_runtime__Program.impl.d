lib/runtime/program.ml: List Local Mediactl_core Mediactl_protocol Mediactl_types Medium Meta Netsys Option Printf Slot String Timed
