lib/runtime/program.mli: Local Mediactl_core Mediactl_types Medium Meta Timed
