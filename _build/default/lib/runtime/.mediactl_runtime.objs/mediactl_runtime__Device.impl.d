lib/runtime/device.ml: List Mediactl_types Meta Netsys Timed
