lib/runtime/device.mli: Local Mediactl_core Timed
