lib/runtime/netsys.mli: Close_slot Flow_link Format Hold_slot Local Mediactl_core Mediactl_protocol Mediactl_types Medium Meta Mute Open_slot Signal Slot
