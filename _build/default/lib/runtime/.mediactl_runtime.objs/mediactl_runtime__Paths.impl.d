lib/runtime/paths.ml: Flow_link Format List Mediactl_core Mediactl_media Netsys Option Semantics
