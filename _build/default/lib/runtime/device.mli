(** Autonomous user devices for scenarios.

    A device is a media endpoint that acts on its own (paper section I):
    it can accept or decline channels offered to it.  Installing a device
    on a box makes the box react automatically whenever a signaling
    channel reaches it:

    - [Answers]: announce availability and accept media channels (a
      holdslot under the device's media face);
    - [Busy]: announce unavailability and reject media channels;
    - [No_answer]: announce availability but never pick up — the channel
      stays half-open until the caller gives up (its slot is left
      passive, as a ringing phone is). *)

open Mediactl_core

type behavior = Answers | Busy | No_answer

val install : Timed.t -> box:string -> Local.t -> behavior -> unit

val hang_up : Timed.t -> box:string -> chan:string -> unit
(** The device's user abandons the call: a [Teardown] meta-signal toward
    the peer box. *)

val accept_now : Timed.t -> box:string -> chan:string -> Local.t -> unit
(** For [No_answer] devices: the user finally picks up. *)
