(** Protocol states of a slot (paper Figure 9).

    The four states of the media-channel user interface (Figure 5) —
    [Closed], [Opening], [Opened], [Flowing] — plus the extra protocol
    state [Closing], not observable in the user interface, in which a
    [close] has been sent and its [closeack] is awaited. *)

type t = Closed | Opening | Opened | Flowing | Closing

val is_live : t -> bool
(** [Opening], [Opened], or [Flowing] — the "live" shorthand of the
    flowlink state-matching diagram (paper Figure 12). *)

val is_dead : t -> bool
(** [Closed] or [Closing]. *)

val all : t list
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
