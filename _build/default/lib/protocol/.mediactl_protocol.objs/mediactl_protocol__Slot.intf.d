lib/protocol/slot.mli: Codec Descriptor Format Mediactl_types Medium Selector Signal Slot_state
