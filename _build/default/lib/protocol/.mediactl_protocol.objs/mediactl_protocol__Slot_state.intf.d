lib/protocol/slot_state.mli: Format
