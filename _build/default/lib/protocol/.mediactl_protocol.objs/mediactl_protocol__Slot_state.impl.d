lib/protocol/slot_state.ml: Format Stdlib
