lib/protocol/slot.ml: Descriptor Format Mediactl_types Medium Option Selector Signal Slot_state
