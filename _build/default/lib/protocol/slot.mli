(** The protocol endpoint machine at a slot (paper Figure 9, section VI).

    A slot is the endpoint of a tunnel at a box.  Every slot is a protocol
    endpoint: it sees all signals received from its tunnel and sends all
    signals into it, and from this complete view it maintains the full
    implementation-level state of the slot — protocol state, medium, and
    cached descriptors/selectors (paper section VII).

    The machine is a pure transition system: {!receive} and the [send_*]
    operations return a new slot value plus emitted signals.  This lets
    the same code be driven by the discrete-event simulator and explored
    exhaustively by the model checker.

    {2 Race resolution}

    Two [open] signals may cross within a tunnel.  The race is detected by
    both slots (each sends an open and receives one in return); the winner
    is always the end that initiated setup of the signaling channel, which
    is fixed and unambiguous (paper section VI-B).  The winning slot
    ignores the incoming open and keeps waiting for its [oack]; the losing
    slot backs off and becomes the acceptor of the winner's open.  A
    further wrinkle found by model checking: the winner may abandon with a
    [close] that chases its own open, so a crossing open can also arrive
    at a slot in the [closing] state, where it is stale and dropped. *)

open Mediactl_types

(** Which end of the signaling channel this slot sits on; decides open
    races. *)
type role = Channel_initiator | Channel_acceptor

type t = {
  label : string;  (** for traces only; not part of protocol state *)
  role : role;
  state : Slot_state.t;
  medium : Medium.t option;  (** defined iff the slot is not closed *)
  remote_desc : Descriptor.t option;
      (** most recent descriptor received in an open, oack, or describe *)
  sent_desc : Descriptor.t option;  (** most recent descriptor we sent *)
  recv_sel : Selector.t option;  (** most recent selector received *)
  sent_sel : Selector.t option;  (** most recent selector we sent *)
}

(** What a received signal meant, for the goal object watching the slot. *)
type note =
  | Opened_by_peer  (** an [open] arrived; the slot is now [Opened] *)
  | Accepted_by_peer  (** an [oack] arrived; the slot is now [Flowing] *)
  | Closed_by_peer
      (** a [close] arrived; a [closeack] was auto-emitted and the slot is
          now [Closed] (or remains [Closing] if a close crossed ours) *)
  | Close_confirmed  (** our close was acknowledged; now [Closed] *)
  | Race_won  (** peer's crossing open ignored; still [Opening] *)
  | Race_lost
      (** we backed off and adopted the peer's open; now [Opened] and this
          slot must act as acceptor *)
  | New_descriptor  (** a [describe] arrived and was cached *)
  | New_selector  (** a [select] arrived and was cached *)
  | Dropped of Signal.t  (** a stale signal was discarded while closing *)

type error =
  | Unexpected_signal of { state : Slot_state.t; signal : Signal.t }
  | Illegal_send of { state : Slot_state.t; operation : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val create : label:string -> role -> t
(** A fresh slot in the [Closed] state with empty caches. *)

(** {2 Receiving} *)

val receive : t -> Signal.t -> (t * Signal.t list * note list, error) result
(** [receive slot signal] processes one signal from the tunnel.  The
    returned signal list holds protocol-mandated automatic replies (a
    [closeack] answering a [close]); everything else is decided by the
    slot's goal object from the notes. *)

(** {2 Sending}

    Each operation checks protocol legality and returns the signal to put
    into the tunnel. *)

val send_open : t -> Medium.t -> Descriptor.t -> (t * Signal.t, error) result
(** Legal in [Closed]; moves to [Opening]. *)

val send_oack : t -> Descriptor.t -> (t * Signal.t, error) result
(** Legal in [Opened]; moves to [Flowing]. *)

val send_close : t -> (t * Signal.t, error) result
(** Legal in any live state; moves to [Closing].  Sent from [Opened] it
    plays the role of reject (paper: [close] subsumes [reject]). *)

val send_describe : t -> Descriptor.t -> (t * Signal.t, error) result
(** Legal in [Flowing] (any time after sending or receiving oack). *)

val send_select : t -> Selector.t -> (t * Signal.t, error) result
(** Legal in [Flowing]. *)

(** {2 Observations} *)

val is_closed : t -> bool
val is_opening : t -> bool
val is_opened : t -> bool
val is_flowing : t -> bool
val is_closing : t -> bool
val is_live : t -> bool

val described : t -> bool
(** A slot is described when a current descriptor has been received for
    it: it is in the [Opened] or [Flowing] state (paper section VII). *)

val tx_enabled : t -> bool
(** True when this end may transmit media: the slot is flowing and the
    most recent selector we sent answers the peer's current descriptor
    with a real codec. *)

val rx_enabled : t -> bool
(** True when this end should be receiving media: the slot is flowing and
    the most recent selector received answers our current descriptor with
    a real codec. *)

val tx_codec : t -> Codec.t option
(** The codec we are sending with, when {!tx_enabled}. *)

val rx_codec : t -> Codec.t option

val equal : t -> t -> bool
(** Structural equality of protocol state (ignores [label]); used by the
    model checker to canonicalize global states. *)

val pp : Format.formatter -> t -> unit
val pp_note : Format.formatter -> note -> unit
