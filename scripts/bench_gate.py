#!/usr/bin/env python3
"""CI regression gates over the committed bench baselines.

One gate per bench artifact family:

  bench_gate.py --gate mc    --fresh BENCH_mc.json    --baseline bench-baseline.json
  bench_gate.py --gate fleet --fresh BENCH_fleet.json --baseline fleet-baseline.json
  bench_gate.py --gate churn --fresh BENCH_churn.json --baseline churn-baseline.json
  bench_gate.py --gate conf  --fresh BENCH_conf.json  --baseline conf-baseline.json
  bench_gate.py --gate lint  --fresh BENCH_lint.json  --baseline lint-baseline.json

Each gate prints what it measured and exits non-zero on the first
regression class it finds.  Thresholds carry generous slack for runner
variance: correctness properties (determinism, verdict agreement) are
exact, throughput gates allow 25% slowdown against the committed
baseline, allocation and pause gates allow more because Gc deltas are
quantized and shared runners stall unpredictably.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def gate_mc(fresh, base):
    """Model-checker bench (E10): verdict agreement + packed time."""
    ok = True
    ft, bt = fresh["totals"], base["totals"]
    ratio = ft["packed_s"] / bt["packed_s"]
    print(f"packed_s: fresh {ft['packed_s']:.2f}s vs committed {bt['packed_s']:.2f}s (x{ratio:.2f})")
    if not ft["all_agree"]:
        print("FAIL: jobs:1 and jobs:4 runs disagree")
        ok = False
    if not ft["all_passed"]:
        print("FAIL: a path model failed its obligation")
        ok = False
    if ratio > 1.25:
        print("FAIL: packed_s regressed more than 25% against the committed baseline")
        ok = False
    return ok


def gate_fleet(fresh, base):
    """Fleet bench (E12/E15): determinism, kernel, throughput, allocation."""
    ok = True
    if not fresh["fleet"]["deterministic"]:
        print("FAIL: per-session fleet results differ across job counts")
        ok = False
    if not fresh["kernel"]["agree"]:
        print("FAIL: timer wheel and heap disagree on the E9 kernel")
        ok = False
    if fresh["kernel"]["wheel_speedup"] < 0.90:
        print(f"FAIL: timer wheel more than 10% slower than the heap "
              f"(speedup {fresh['kernel']['wheel_speedup']:.2f})")
        ok = False
    # Throughput gate: jobs-1 rows against the committed baseline, with
    # 25% slack for runner variance.
    f1 = next(r for r in fresh["fleet"]["rows"] if r["jobs"] == 1)
    b1 = next(r for r in base["fleet"]["rows"] if r["jobs"] == 1)
    ratio = f1["sessions_per_s"] / b1["sessions_per_s"]
    print(f"sessions/s (jobs 1): fresh {f1['sessions_per_s']:.0f} vs committed "
          f"{b1['sessions_per_s']:.0f} (x{ratio:.2f})")
    if ratio < 0.75:
        print("FAIL: sessions/sec regressed more than 25% against the committed baseline")
        ok = False
    ev_ratio = f1["events_per_s"] / b1["events_per_s"]
    print(f"events/s (jobs 1): fresh {f1['events_per_s']:.0f} vs committed "
          f"{b1['events_per_s']:.0f} (x{ev_ratio:.2f})")
    if ev_ratio < 0.75:
        print("FAIL: events/sec regressed more than 25% against the committed baseline")
        ok = False
    # Allocation gate: minor words/event on the jobs-1 run.  Gc deltas
    # are quantized to the minor-heap size, hence the 2x slack.
    if "alloc" in base:
        aratio = fresh["alloc"]["minor_words_per_event"] / base["alloc"]["minor_words_per_event"]
        print(f"minor words/event (jobs 1): fresh {fresh['alloc']['minor_words_per_event']:.1f} "
              f"vs committed {base['alloc']['minor_words_per_event']:.1f} (x{aratio:.2f})")
        if aratio > 2.0:
            print("FAIL: allocation per event regressed more than 2x against the committed baseline")
            ok = False
    else:
        print("no alloc section in the committed baseline; skipping the allocation gate")
    rows = {r["jobs"]: r for r in fresh["fleet"]["rows"]}
    if 4 in rows:
        print(f"events/s scaling jobs 1 -> 4: x{rows[4]['events_per_s'] / f1['events_per_s']:.2f} "
              f"on {fresh['cores']} core(s)")
    return ok


def gate_churn(fresh, base):
    """Churn bench (E16): digest stability across jobs, throughput, pauses."""
    ok = True
    if not fresh["deterministic"]:
        print("FAIL: churn digests differ across job counts")
        ok = False
    # Per-population digest check, belt-and-braces over the aggregate
    # flag: every row of a population must carry the same digest.
    by_pop = {}
    for r in fresh["rows"]:
        by_pop.setdefault(r["population"], set()).add(r["digest"])
    for pop, digests in sorted(by_pop.items()):
        if len(digests) != 1:
            print(f"FAIL: population {pop} digests differ across jobs: {sorted(digests)}")
            ok = False
        else:
            print(f"population {pop}: digest {next(iter(digests))[:12]} stable across jobs")
    # Throughput gate on the largest jobs-1 cell — the row most exposed
    # to major-GC marking of the big live heap, which is what E16
    # measures.  25% slack for runner variance.
    def biggest_j1(doc):
        rows = [r for r in doc["rows"] if r["jobs"] == 1]
        return max(rows, key=lambda r: r["population"])
    f1, b1 = biggest_j1(fresh), biggest_j1(base)
    if f1["population"] != b1["population"]:
        print(f"note: largest jobs-1 population changed "
              f"({b1['population']} -> {f1['population']}); comparing anyway")
    ratio = f1["events_per_s"] / b1["events_per_s"]
    print(f"events/s (pop {f1['population']}, jobs 1): fresh {f1['events_per_s']:.0f} "
          f"vs committed {b1['events_per_s']:.0f} (x{ratio:.2f})")
    if ratio < 0.75:
        print("FAIL: churn events/sec regressed more than 25% against the committed baseline")
        ok = False
    # Pause gate: the max observed batch-pause proxy across all rows.
    # Shared runners stall for tens of milliseconds on their own, so
    # the floor is a flat 250 ms and the baseline multiplier is 5x.
    fresh_pause = max(r["max_pause_ms"] for r in fresh["rows"])
    base_pause = max(r["max_pause_ms"] for r in base["rows"])
    limit = max(250.0, 5.0 * base_pause)
    print(f"max pause proxy: fresh {fresh_pause:.1f} ms vs committed {base_pause:.1f} ms "
          f"(limit {limit:.0f} ms)")
    if fresh_pause > limit:
        print("FAIL: max GC-pause proxy exceeded the gate")
        ok = False
    peak = max(r["peak_resident"] for r in fresh["rows"])
    print(f"peak resident sessions: {peak}")
    return ok


def gate_conf(fresh, base):
    """N-party conference bench (E17): exact 3-party state counts,
    jobs:1/jobs:N agreement, fleet + churn digest stability."""
    ok = True
    # The star encoding is canonical, so the reachable-space size of
    # each committed 3-party configuration is an exact invariant: any
    # drift means the model (or the codec) changed semantics.
    fresh_rows = {r["config"]: r for r in fresh["checks"]}
    for br in base["checks"]:
        fr = fresh_rows.get(br["config"])
        if fr is None:
            print(f"FAIL: config {br['config']} missing from the fresh run")
            ok = False
        elif (fr["states"], fr["transitions"]) != (br["states"], br["transitions"]):
            print(f"FAIL: {br['config']} drifted: "
                  f"{br['states']}/{br['transitions']} -> {fr['states']}/{fr['transitions']}")
            ok = False
        else:
            print(f"{br['config']}: {fr['states']} states / {fr['transitions']} transitions (exact)")
    ft, bt = fresh["check_totals"], base["check_totals"]
    if not ft["all_agree"]:
        print("FAIL: jobs:1 and parallel 3-party runs disagree")
        ok = False
    if not ft["all_passed"]:
        print("FAIL: a 3-party configuration failed its obligation")
        ok = False
    ratio = ft["seq_s"] / bt["seq_s"]
    print(f"check seq_s: fresh {ft['seq_s']:.2f}s vs committed {bt['seq_s']:.2f}s (x{ratio:.2f})")
    if ratio > 1.25:
        print("FAIL: 3-party check time regressed more than 25% against the committed baseline")
        ok = False
    for section in ("fleet", "churn"):
        doc = fresh[section]
        digests = {r["digest"] for r in doc["rows"]}
        if not doc["deterministic"] or len(digests) != 1:
            print(f"FAIL: conference {section} digests differ across jobs: {sorted(digests)}")
            ok = False
        else:
            print(f"conference {section}: digest {next(iter(digests))[:12]} stable across jobs")
    fl = fresh["fleet"]
    bad = [r for r in fl["rows"] if r["conformant"] != fl["sessions"] or r["satisfied"] != fl["sessions"]]
    if bad:
        print(f"FAIL: conference fleet rows not fully conformant/satisfied: {bad}")
        ok = False
    else:
        print(f"conference fleet: {fl['sessions']}/{fl['sessions']} conformant and satisfied on every row")
    return ok


def gate_lint(fresh, base):
    """Lint bench (E18): the tree must lint clean and the whole-tree
    callgraph analysis must stay cheap enough to run on every push."""
    ok = True
    if fresh["errors"] != 0:
        print(f"FAIL: {fresh['errors']} unwaived error-severity lint finding(s)")
        ok = False
    else:
        print(f"lint clean: 0 errors, {fresh['warnings']} warning(s), "
              f"{fresh['allowlisted']} allowlisted over {fresh['files']} files")
    # Runtime gate: 2x the committed baseline.  The analysis is pure
    # CPU (parse + callgraph + walks), so the slack is tighter than the
    # throughput gates but still generous for shared runners.
    ratio = fresh["wall_s"] / base["wall_s"]
    print(f"wall_s: fresh {fresh['wall_s']:.3f}s vs committed {base['wall_s']:.3f}s "
          f"(x{ratio:.2f})")
    if ratio > 2.0:
        print("FAIL: lint runtime regressed more than 2x against the committed baseline")
        ok = False
    if fresh["files"] < base["files"]:
        print(f"FAIL: scanned file count shrank ({base['files']} -> {fresh['files']}); "
              f"the scanner lost part of the tree")
        ok = False
    return ok


GATES = {"mc": gate_mc, "fleet": gate_fleet, "churn": gate_churn, "conf": gate_conf,
         "lint": gate_lint}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--gate", required=True, choices=sorted(GATES))
    ap.add_argument("--fresh", required=True, help="freshly generated bench JSON")
    ap.add_argument("--baseline", required=True, help="committed baseline JSON")
    args = ap.parse_args()
    ok = GATES[args.gate](load(args.fresh), load(args.baseline))
    print(f"gate {args.gate}: {'OK' if ok else 'FAILED'}")
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
